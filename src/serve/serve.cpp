#include "serve/serve.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <unordered_map>
#include <unordered_set>

#include "common/assert.h"

namespace mulink::serve {

namespace {

// splitmix64 finalizer: full-avalanche mix so structured link ids (dense
// ranges, strided ids) still spread evenly over the shards.
std::uint64_t Mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::size_t DepthBucket(std::size_t depth) {
  const std::size_t bucket =
      depth <= 1 ? 0 : static_cast<std::size_t>(std::bit_width(depth) - 1);
  return std::min(bucket, ShardStats::kDepthBuckets - 1);
}

constexpr std::uint32_t kNil = 0xffffffffu;

}  // namespace

const char* ToString(BackPressure policy) {
  switch (policy) {
    case BackPressure::kBlock:
      return "block";
    case BackPressure::kDropOldest:
      return "drop-oldest";
    case BackPressure::kRejectNewest:
      return "reject-newest";
  }
  return "unknown";
}

// Ownership is the shard's whole concurrency story: everything below is
// either worker-owned (touched only by the shard's worker thread), demux-
// owned (touched only by the producer), or an atomic cursor. The two
// ThreadRole phantom capabilities make that discipline compiler-checked
// under Clang -Wthread-safety (DESIGN.md §16): worker-owned fields are
// GUARDED_BY(worker_role), demux-owned counters by producer_role, and the
// owning loops acquire the matching role for their scope. Post-join
// snapshot readers (Stats, MergedDecisionLog, AggregateMetrics) carry an
// explicit do-not-analyze waiver instead of silently reading across the
// boundary.
struct ServeCore::Shard {
  explicit Shard(const ServeConfig& cfg) : ring(cfg.queue_capacity) {
    // Resident links share one warm scoring workspace: consecutive
    // decisions for links of the same profile reuse the profile covariance
    // stack instead of rebuilding it per link.
    engine.UseSharedScratch();
  }

  // Roster entry slab with an intrusive LRU list (head = most recent).
  struct LinkEntry {
    std::uint64_t link_id = 0;
    std::size_t slot = 0;  // engine slot
    std::uint32_t profile = 0;
    std::uint64_t frames = 0;
    std::uint32_t prev = kNil;
    std::uint32_t next = kNil;
  };

  void TouchLru(std::uint32_t idx) MULINK_REQUIRES(worker_role) {
    if (lru_head == idx) return;
    Unlink(idx);
    LinkEntry& e = entries[idx];
    e.prev = kNil;
    e.next = lru_head;
    if (lru_head != kNil) entries[lru_head].prev = idx;
    lru_head = idx;
    if (lru_tail == kNil) lru_tail = idx;
  }

  void Unlink(std::uint32_t idx) MULINK_REQUIRES(worker_role) {
    LinkEntry& e = entries[idx];
    if (e.prev != kNil) entries[e.prev].next = e.next;
    if (e.next != kNil) entries[e.next].prev = e.prev;
    if (lru_head == idx) lru_head = e.next;
    if (lru_tail == idx) lru_tail = e.prev;
    e.prev = kNil;
    e.next = kNil;
  }

  SpscRing<Frame> ring;

  // ---- ownership capabilities (phantom; no runtime state) ----
  ThreadRole worker_role;    // held by WorkerLoop for the worker's lifetime
  ThreadRole producer_role;  // held by Submit on the demux thread

  core::SensingEngine engine MULINK_GUARDED_BY(worker_role);

  // ---- producer-owned (demux thread) ----
  std::uint64_t frames_routed MULINK_GUARDED_BY(producer_role) = 0;
  std::uint64_t frames_dropped MULINK_GUARDED_BY(producer_role) = 0;
  std::uint64_t frames_rejected MULINK_GUARDED_BY(producer_role) = 0;

  // ---- shared cursors (queue accounting; atomics need no capability) ----
  std::atomic<std::uint64_t> produced{0};
  std::atomic<std::uint64_t> consumed{0};

  // ---- worker-owned ----
  std::vector<LinkEntry> entries MULINK_GUARDED_BY(worker_role);
  std::vector<std::uint32_t> free_entries MULINK_GUARDED_BY(worker_role);
  std::unordered_map<std::uint64_t, std::uint32_t> roster
      MULINK_GUARDED_BY(worker_role);
  std::uint32_t lru_head MULINK_GUARDED_BY(worker_role) = kNil;
  std::uint32_t lru_tail MULINK_GUARDED_BY(worker_role) = kNil;
  // Health-evicted links barred from readmission for this many of their own
  // frames (link-local countdown keeps eviction shard-topology-free).
  std::unordered_map<std::uint64_t, std::uint64_t> cooldown
      MULINK_GUARDED_BY(worker_role);
  // Every link ever evicted, to classify later admissions as readmissions.
  std::unordered_set<std::uint64_t> evicted_ever
      MULINK_GUARDED_BY(worker_role);
  std::vector<DecisionRecord> log MULINK_GUARDED_BY(worker_role);
  std::uint64_t frames_processed_local MULINK_GUARDED_BY(worker_role) = 0;
  std::uint64_t decisions MULINK_GUARDED_BY(worker_role) = 0;
  std::uint64_t links_admitted MULINK_GUARDED_BY(worker_role) = 0;
  std::uint64_t links_evicted MULINK_GUARDED_BY(worker_role) = 0;
  std::uint64_t links_readmitted MULINK_GUARDED_BY(worker_role) = 0;
  std::uint64_t depth_buckets[ShardStats::kDepthBuckets]
      MULINK_GUARDED_BY(worker_role) = {};
  std::uint64_t depth_samples MULINK_GUARDED_BY(worker_role) = 0;
  std::size_t max_depth MULINK_GUARDED_BY(worker_role) = 0;
  obs::Registry metrics MULINK_GUARDED_BY(worker_role);
};

ServeCore::ServeCore(ServeConfig config)
    : config_(config),
      effective_policy_(config.deterministic ? BackPressure::kBlock
                                             : config.policy) {
  MULINK_REQUIRE(config_.num_shards >= 1, "ServeCore: need >= 1 shard");
  MULINK_REQUIRE(config_.queue_capacity >= 2,
                 "ServeCore: queue capacity must be >= 2");
  // mulink-lint: allow(alloc): ctor, setup path
  shards_.reserve(config_.num_shards);
  for (std::size_t i = 0; i < config_.num_shards; ++i) {
    // mulink-lint: allow(alloc): ctor, setup path
    shards_.push_back(std::make_unique<Shard>(config_));
  }
}

ServeCore::~ServeCore() { Stop(); }

std::uint32_t ServeCore::RegisterProfile(
    std::shared_ptr<const core::Detector> detector,
    std::vector<double> empty_scores, bool per_link_calibration) {
  MULINK_REQUIRE(!started_, "ServeCore: register profiles before Start()");
  MULINK_REQUIRE(detector != nullptr, "ServeCore: null profile detector");
  // mulink-lint: allow(alloc): profile registration, setup path
  profiles_.push_back(Profile{std::move(detector), std::move(empty_scores),
                              per_link_calibration});
  return static_cast<std::uint32_t>(profiles_.size() - 1);
}

std::size_t ServeCore::ShardOf(std::uint64_t link_id) const {
  return static_cast<std::size_t>(Mix64(link_id) % config_.num_shards);
}

void ServeCore::Start() {
  MULINK_REQUIRE(!started_, "ServeCore: already started");
  started_ = true;
  // mulink-lint: allow(alloc): worker spawn, setup path
  workers_.reserve(config_.num_shards);
  for (std::size_t i = 0; i < config_.num_shards; ++i) {
    Shard* shard = shards_[i].get();
    // mulink-lint: allow(alloc): worker spawn, setup path
    workers_.emplace_back(
        [this, shard](std::stop_token stop) { WorkerLoop(stop, *shard); });
  }
}

bool ServeCore::Submit(std::uint64_t link_id, std::uint32_t profile_id,
                       const wifi::CsiPacket& packet) {
  MULINK_REQUIRE(started_ && !stopped_,
                 "ServeCore: Submit outside Start()/Stop()");
  MULINK_REQUIRE(profile_id < profiles_.size(),
                 "ServeCore: unknown profile id");
  Shard& shard = *shards_[ShardOf(link_id)];
  // Single demux thread by contract: this call IS the producer role.
  ScopedRole producer(shard.producer_role);
  // In-place produce: the packet is copy-assigned straight into the claimed
  // ring cell (whose CSI buffer sticks once warm), so routing costs one
  // packet copy total instead of staging + cell.
  const auto fill = [&](Frame& cell) {
    cell.link_id = link_id;
    cell.profile_id = profile_id;
    cell.packet = packet;  // copy-assign reuses the cell's CSI buffer
  };

  if (!shard.ring.TryProduce(fill)) {
    switch (effective_policy_) {
      case BackPressure::kRejectNewest:
        ++shard.frames_rejected;
        MULINK_OBS_COUNT_REF(router_metrics_, kFramesRejected, 1);
        return false;
      case BackPressure::kDropOldest:
        // Displace until the push lands. DiscardOldest can lose the race
        // with the worker draining the queue — then the retry push wins.
        while (!shard.ring.TryProduce(fill)) {
          if (shard.ring.DiscardOldest()) {
            ++shard.frames_dropped;
            shard.consumed.fetch_add(1, std::memory_order_release);
            MULINK_OBS_COUNT_REF(router_metrics_, kFramesDropped, 1);
          }
        }
        break;
      case BackPressure::kBlock:
        // Batched hand-off: a full ring means the workers are the
        // bottleneck, so yielding per failed push would context-switch once
        // per frame (ruinous when demux and worker share a core). Back off
        // until the worker has drained half the ring, then burst again —
        // the alternation cost amortizes over capacity/2 frames.
        while (!shard.ring.TryProduce(fill)) {
          std::this_thread::yield();
          while (shard.ring.ApproxSize() > shard.ring.capacity() / 2) {
            std::this_thread::sleep_for(std::chrono::microseconds(200));
          }
        }
        break;
    }
  }
  ++shard.frames_routed;
  shard.produced.fetch_add(1, std::memory_order_release);
  MULINK_OBS_COUNT_REF(router_metrics_, kFramesRouted, 1);
  return true;
}

void ServeCore::Drain() {
  for (const auto& shard : shards_) {
    while (shard->consumed.load(std::memory_order_acquire) !=
           shard->produced.load(std::memory_order_acquire)) {
      // A deep backlog takes the worker milliseconds to score; sleeping
      // instead of yield-spinning keeps the core with the worker.
      if (shard->ring.ApproxSize() > 64) {
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      } else {
        std::this_thread::yield();
      }
    }
  }
}

void ServeCore::Stop() {
  if (!started_ || stopped_) return;
  stopped_ = true;
  for (auto& worker : workers_) worker.request_stop();
  for (auto& worker : workers_) worker.join();
  workers_.clear();
}

void ServeCore::WorkerLoop(std::stop_token stop, Shard& shard) {
  // This thread owns every worker_role-guarded field for its lifetime.
  ScopedRole worker(shard.worker_role);
  for (;;) {
    // In-place consume: the frame is scored where it sits in the claimed
    // cell (no pop copy). The CAS claim keeps the cell private until the
    // sequence release, so the producer — including its drop-oldest
    // dequeuer — cannot touch it mid-score.
    const bool popped = shard.ring.TryConsume([&](const Frame& frame) {
      // The lambda body is a fresh function to the thread-safety analysis;
      // it runs on this worker thread, so re-assert the role it holds.
      shard.worker_role.AssertHeld();
      // Backlog remaining after this claim — the shard's instantaneous lag.
      const std::size_t depth = shard.ring.ApproxSize();
      shard.depth_buckets[DepthBucket(depth)] += 1;
      ++shard.depth_samples;
      if (depth > shard.max_depth) shard.max_depth = depth;
      MULINK_OBS_GAUGE(&shard.metrics, kQueueDepth,
                       static_cast<double>(depth));
      ProcessFrame(shard, frame);
    });
    if (popped) {
      ++shard.frames_processed_local;
      shard.consumed.fetch_add(1, std::memory_order_release);
      continue;
    }
    if (stop.stop_requested() &&
        shard.consumed.load(std::memory_order_acquire) ==
            shard.produced.load(std::memory_order_acquire)) {
      return;  // producer finished and the queue is fully drained
    }
    std::this_thread::yield();
  }
}

void ServeCore::ProcessFrame(Shard& shard, const Frame& frame)
    MULINK_REQUIRES(shard.worker_role) {
  std::uint32_t idx;
  const auto it = shard.roster.find(frame.link_id);
  if (it == shard.roster.end()) {
    const auto barred = shard.cooldown.find(frame.link_id);
    if (barred != shard.cooldown.end()) {
      if (barred->second > 0) {
        // The bar is counted in the link's own frames, so the readmission
        // point is independent of shard topology.
        --barred->second;
        return;
      }
      shard.cooldown.erase(barred);
    }
    idx = static_cast<std::uint32_t>(
        AdmitLink(shard, frame.link_id, frame.profile_id));
  } else {
    idx = it->second;
  }
  Shard::LinkEntry& entry = shard.entries[idx];
  ++entry.frames;
  shard.TouchLru(idx);

  const auto decision = shard.engine.ProcessPacket(entry.slot, frame.packet);
  if (!decision.has_value()) return;
  ++shard.decisions;
  if (config_.collect_decision_log) {
    // mulink-lint: allow(alloc): opt-in determinism artifact, off for throughput runs
    shard.log.push_back(DecisionRecord{frame.link_id, *decision});
  }
  if (config_.evict_unhealthy &&
      entry.frames >= config_.health_check_min_frames) {
    const nic::LinkHealth health = shard.engine.Health(entry.slot);
    const std::size_t num_antennas =
        shard.engine.detector(entry.slot).num_antennas();
    const bool all_dead =
        static_cast<std::size_t>(std::popcount(health.dead_antenna_mask)) >=
        num_antennas;
    const double quarantine_ratio =
        health.received == 0
            ? 0.0
            : static_cast<double>(health.quarantined) /
                  static_cast<double>(health.received);
    if (all_dead || quarantine_ratio > config_.max_quarantine_ratio) {
      EvictEntry(shard, idx, config_.readmit_after_frames);
    }
  }
}

std::size_t ServeCore::AdmitLink(Shard& shard, std::uint64_t link_id,
                                 std::uint32_t profile_id)
    MULINK_REQUIRES(shard.worker_role) {
  if (config_.max_resident_per_shard != 0 &&
      shard.roster.size() >= config_.max_resident_per_shard) {
    // Capacity eviction: LRU tail goes, no readmission bar (it only lost a
    // residency race, nothing is wrong with the link).
    MULINK_REQUIRE(shard.lru_tail != kNil,
                   "ServeCore: full roster with empty LRU list");
    EvictEntry(shard, shard.lru_tail, 0);
  }

  const Profile& profile = profiles_[profile_id];
  core::StreamingConfig stream = config_.stream;
  std::size_t slot;
  if (profile.per_link_calibration) {
    // mulink-lint: allow(alloc): link admission, control plane
    slot = shard.engine.AddLink(core::Detector(*profile.detector),
                                profile.empty_scores, stream);
  } else {
    // Shared immutable detector: the ladder would mutate it in place, so
    // calibration is structurally off for this profile group.
    stream.calibration.enabled = false;
    slot =
        shard.engine.AddLink(profile.detector, profile.empty_scores, stream);
  }

  std::uint32_t idx;
  if (!shard.free_entries.empty()) {
    idx = shard.free_entries.back();
    shard.free_entries.pop_back();
  } else {
    idx = static_cast<std::uint32_t>(shard.entries.size());
    // mulink-lint: allow(alloc): link admission, control plane
    shard.entries.emplace_back();
  }
  Shard::LinkEntry& entry = shard.entries[idx];
  entry.link_id = link_id;
  entry.slot = slot;
  entry.profile = profile_id;
  entry.frames = 0;
  entry.prev = kNil;
  entry.next = kNil;
  // mulink-lint: allow(alloc): link admission, control plane
  shard.roster.emplace(link_id, idx);
  shard.TouchLru(idx);

  ++shard.links_admitted;
  MULINK_OBS_COUNT_REF(shard.metrics, kLinksAdmitted, 1);
  if (shard.evicted_ever.contains(link_id)) {
    ++shard.links_readmitted;
    MULINK_OBS_COUNT_REF(shard.metrics, kLinksReadmitted, 1);
  }
  MULINK_OBS_GAUGE(&shard.metrics, kResidentLinks,
                   static_cast<double>(shard.roster.size()));
  return idx;
}

void ServeCore::EvictEntry(Shard& shard, std::uint32_t entry_idx,
                           std::uint64_t cooldown_frames)
    MULINK_REQUIRES(shard.worker_role) {
  Shard::LinkEntry& entry = shard.entries[entry_idx];
  shard.engine.RemoveLink(entry.slot);
  shard.Unlink(entry_idx);
  shard.roster.erase(entry.link_id);
  if (cooldown_frames > 0) {
    // mulink-lint: allow(alloc): eviction bookkeeping, control plane
    shard.cooldown.emplace(entry.link_id, cooldown_frames);
  }
  // mulink-lint: allow(alloc): eviction bookkeeping, control plane
  shard.evicted_ever.insert(entry.link_id);
  // mulink-lint: allow(alloc): eviction bookkeeping, control plane
  shard.free_entries.push_back(entry_idx);
  ++shard.links_evicted;
  MULINK_OBS_COUNT_REF(shard.metrics, kLinksEvicted, 1);
  MULINK_OBS_GAUGE(&shard.metrics, kResidentLinks,
                   static_cast<double>(shard.roster.size()));
}

// Post-run snapshot: called after Drain()/Stop() when the workers are idle
// or joined, so the cross-role reads below are quiescent by contract (the
// serve tests and bench drive exactly this sequence). The waiver is the
// explicit marker that this function reads across the ownership boundary.
std::vector<ShardStats> ServeCore::Stats() const
    MULINK_NO_THREAD_SAFETY_ANALYSIS {
  std::vector<ShardStats> stats;
  // mulink-lint: allow(alloc): monitoring snapshot, off the frame path
  stats.reserve(shards_.size());
  for (const auto& shard : shards_) {
    ShardStats s;
    s.frames_routed = shard->frames_routed;
    s.frames_dropped = shard->frames_dropped;
    s.frames_rejected = shard->frames_rejected;
    s.frames_processed = shard->frames_processed_local;
    s.decisions = shard->decisions;
    s.links_admitted = shard->links_admitted;
    s.links_evicted = shard->links_evicted;
    s.links_readmitted = shard->links_readmitted;
    s.resident_links = shard->roster.size();
    for (std::size_t b = 0; b < ShardStats::kDepthBuckets; ++b) {
      s.depth_buckets[b] = shard->depth_buckets[b];
    }
    s.depth_samples = shard->depth_samples;
    s.max_depth = shard->max_depth;
    // mulink-lint: allow(alloc): monitoring snapshot, off the frame path
    stats.push_back(s);
  }
  return stats;
}

// Post-run snapshot (see Stats).
std::vector<DecisionRecord> ServeCore::MergedDecisionLog() const
    MULINK_NO_THREAD_SAFETY_ANALYSIS {
  std::vector<DecisionRecord> merged;
  std::size_t total = 0;
  for (const auto& shard : shards_) total += shard->log.size();
  // mulink-lint: allow(alloc): post-run log merge, off the frame path
  merged.reserve(total);
  for (const auto& shard : shards_) {
    // mulink-lint: allow(alloc): post-run log merge, off the frame path
    merged.insert(merged.end(), shard->log.begin(), shard->log.end());
  }
  // Link-id-major with per-link arrival order preserved: per-link order is
  // already FIFO within each shard's log, and a link lives on exactly one
  // shard, so a stable sort by link id is the canonical merge.
  std::stable_sort(merged.begin(), merged.end(),
                   [](const DecisionRecord& a, const DecisionRecord& b) {
                     return a.link_id < b.link_id;
                   });
  return merged;
}

// Post-run snapshot (see Stats).
obs::Registry ServeCore::AggregateMetrics() const
    MULINK_NO_THREAD_SAFETY_ANALYSIS {
  obs::Registry total;
  total.MergeFrom(router_metrics_);
  for (const auto& shard : shards_) {
    total.MergeFrom(shard->metrics);
    total.MergeFrom(shard->engine.AggregateMetrics());
  }
  return total;
}

}  // namespace mulink::serve
