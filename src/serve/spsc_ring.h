// Bounded lock-free ingest queue for serving shards.
//
// Layout is the classic sequence-stamped bounded queue (Vyukov): every cell
// carries an atomic sequence number that encodes whose turn the cell is on,
// so producer and consumers synchronize exclusively through cell-local
// acquire/release pairs — no locks, no shared mutable cursor between sides.
//
// The serving tier uses it single-producer (the demux thread) with TWO
// logical dequeuers: the shard worker pops frames, and under the
// drop-oldest back-pressure policy the *producer* legally dequeues-and-
// discards the oldest frame to make room. That second dequeuer is why the
// pop side uses a CAS on the tail cursor rather than a plain store — a
// producer-side overwrite of a cell the consumer is mid-copy on would be a
// data race; a CAS-claimed discard is not.
//
// Cells hold T by value and are written with copy-assignment, so element
// types that reuse heap capacity on assignment (wifi::CsiPacket) allocate
// only while the ring warms up — the steady state touches no allocator.
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>

#include "common/annotations.h"
#include "common/assert.h"

namespace mulink::serve {

template <typename T>
class SpscRing {
 public:
  // Capacity is rounded up to a power of two (minimum 2) so cell indexing
  // is a mask, not a modulo.
  explicit SpscRing(std::size_t capacity) {
    MULINK_REQUIRE(capacity >= 2, "SpscRing: capacity must be >= 2");
    std::size_t cap = 2;
    while (cap < capacity) cap <<= 1;
    mask_ = cap - 1;
    // mulink-lint: allow(alloc): ctor, setup path
    cells_ = std::make_unique<Cell[]>(cap);
    for (std::size_t i = 0; i < cap; ++i) {
      cells_[i].seq.store(i, std::memory_order_relaxed);
    }
  }

  std::size_t capacity() const { return mask_ + 1; }

  // Producer only. False when the ring is full (caller picks the
  // back-pressure policy: reject, discard-oldest-and-retry, or spin).
  MULINK_HOT bool TryPush(const T& value) {
    const std::size_t pos = head_.load(std::memory_order_relaxed);
    Cell& cell = cells_[pos & mask_];
    const std::size_t seq = cell.seq.load(std::memory_order_acquire);
    if (seq != pos) return false;  // cell not yet released by dequeuers
    cell.data = value;  // copy-assign: reuses the cell's heap capacity
    cell.seq.store(pos + 1, std::memory_order_release);
    head_.store(pos + 1, std::memory_order_release);
    return true;
  }

  // In-place producer variant: instead of copy-assigning a caller-side
  // staging value into the cell, the writer callback fills the claimed
  // cell's T directly (reusing its heap capacity), saving one full copy of
  // T per enqueue on the hot path. Same cell-sequence protocol as TryPush.
  template <typename Writer>
  MULINK_HOT bool TryProduce(Writer&& write) {
    const std::size_t pos = head_.load(std::memory_order_relaxed);
    Cell& cell = cells_[pos & mask_];
    const std::size_t seq = cell.seq.load(std::memory_order_acquire);
    if (seq != pos) return false;  // cell not yet released by dequeuers
    write(cell.data);
    cell.seq.store(pos + 1, std::memory_order_release);
    head_.store(pos + 1, std::memory_order_release);
    return true;
  }

  // Any dequeuer. False when empty.
  MULINK_HOT bool TryPop(T& out) {
    std::size_t pos = tail_.load(std::memory_order_relaxed);
    for (;;) {
      Cell& cell = cells_[pos & mask_];
      const std::size_t seq = cell.seq.load(std::memory_order_acquire);
      if (seq != pos + 1) return false;  // empty (or cell still being filled)
      if (tail_.compare_exchange_weak(pos, pos + 1,
                                      std::memory_order_relaxed)) {
        out = cell.data;  // copy-assign into the caller's reusable slot
        cell.seq.store(pos + mask_ + 1, std::memory_order_release);
        return true;
      }
      // CAS failure reloaded pos; another dequeuer claimed the cell.
    }
  }

  // In-place dequeuer variant: the consumer callback runs on the claimed
  // cell's T before the cell is released, so the worker processes the frame
  // where it sits instead of copying it out first. The CAS claim makes the
  // cell private to this dequeuer for the callback's duration — the
  // producer cannot reuse it until the sequence store below — so this is
  // race-free even with the drop-oldest producer-side dequeuer active.
  // Keep the callback short: the cell is unavailable to TryPush while it
  // runs, effectively shrinking the ring by one.
  template <typename Consumer>
  MULINK_HOT bool TryConsume(Consumer&& consume) {
    std::size_t pos = tail_.load(std::memory_order_relaxed);
    for (;;) {
      Cell& cell = cells_[pos & mask_];
      const std::size_t seq = cell.seq.load(std::memory_order_acquire);
      if (seq != pos + 1) return false;  // empty (or cell still being filled)
      if (tail_.compare_exchange_weak(pos, pos + 1,
                                      std::memory_order_relaxed)) {
        consume(cell.data);
        cell.seq.store(pos + mask_ + 1, std::memory_order_release);
        return true;
      }
      // CAS failure reloaded pos; another dequeuer claimed the cell.
    }
  }

  // Dequeue-and-discard the oldest element without copying it out (the
  // abandoned value is overwritten in place by a future TryPush). Used by
  // the producer to implement drop-oldest back-pressure.
  MULINK_HOT bool DiscardOldest() {
    std::size_t pos = tail_.load(std::memory_order_relaxed);
    for (;;) {
      Cell& cell = cells_[pos & mask_];
      const std::size_t seq = cell.seq.load(std::memory_order_acquire);
      if (seq != pos + 1) return false;
      if (tail_.compare_exchange_weak(pos, pos + 1,
                                      std::memory_order_relaxed)) {
        cell.seq.store(pos + mask_ + 1, std::memory_order_release);
        return true;
      }
    }
  }

  // Racy snapshot (monitoring only — cursors move under the reader).
  std::size_t ApproxSize() const {
    const std::size_t head = head_.load(std::memory_order_acquire);
    const std::size_t tail = tail_.load(std::memory_order_acquire);
    return head >= tail ? head - tail : 0;
  }

 private:
  struct Cell {
    std::atomic<std::size_t> seq{0};
    T data{};
  };

  std::unique_ptr<Cell[]> cells_;
  std::size_t mask_ = 0;
  // Separate cache lines so the producer's head updates don't false-share
  // with consumer-side tail traffic.
  alignas(64) std::atomic<std::size_t> head_{0};
  alignas(64) std::atomic<std::size_t> tail_{0};
};

}  // namespace mulink::serve
