// Eigendecomposition of complex Hermitian matrices via the cyclic Jacobi
// method with complex plane rotations.
//
// MUSIC needs the full eigensystem of the (tiny: n_antennas x n_antennas)
// sample covariance matrix. Jacobi is exact-enough, simple, and numerically
// robust at these sizes; convergence is quadratic once the off-diagonal mass
// is small.
#pragma once

#include <vector>

#include "linalg/cmatrix.h"

namespace mulink::linalg {

struct EigenSystem {
  // Eigenvalues in ascending order. For Hermitian inputs these are real.
  std::vector<double> values;
  // Unitary matrix whose columns are the corresponding eigenvectors.
  CMatrix vectors;

  // Convenience: the k-th eigenvector as a column vector.
  std::vector<Complex> Vector(std::size_t k) const;

  // Allocation-free variant: out.size() must equal vectors.rows().
  void VectorInto(std::size_t k, std::span<Complex> out) const;
};

struct JacobiOptions {
  int max_sweeps = 64;
  double tolerance = 1e-12;  // stop when off-diagonal Frobenius norm^2 / n^2 < tol^2
};

// Reusable scratch for the Jacobi sweeps. A default-constructed workspace
// grows on first use; subsequent decompositions of same-sized matrices do
// not allocate.
struct EigWorkspace {
  CMatrix a;                       // working copy being diagonalized
  CMatrix v;                       // accumulated rotations
  std::vector<std::size_t> order;  // eigenvalue sort permutation
};

// Decompose a Hermitian matrix A into V diag(values) V^H.
//
// Throws PreconditionError when A is not square or not Hermitian (to 1e-8),
// NumericalError when the sweep budget is exhausted before convergence.
EigenSystem HermitianEigen(const CMatrix& a, const JacobiOptions& options = {});

// Workspace variant: writes the decomposition into `out`, reusing both the
// workspace and `out`'s buffers. Bit-identical to the allocating overload.
void HermitianEigen(const CMatrix& a, EigenSystem& out, EigWorkspace& ws,
                    const JacobiOptions& options = {});

// Smallest eigenvalue only, allocation-free and closed-form for the sizes
// the detector's noise-floor subtraction actually sees: n == 1 trivially,
// n == 2 by the quadratic formula, n == 3 by the trigonometric (Cardano)
// method for Hermitian 3x3 matrices. Falls back to a full Jacobi
// decomposition for n > 3 (allocating; off the hot path). Agrees with
// HermitianEigen().values.front() to ~1e-12 * ||A|| — the callers that
// switched from the full decomposition re-baselined (DESIGN.md §14).
double SmallestHermitianEigenvalue(const CMatrix& a);

}  // namespace mulink::linalg
