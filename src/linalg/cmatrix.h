// Small dense complex matrix used by the MUSIC estimator and channel math.
//
// Dimensions in this library are tiny (antenna counts of 2–8, subcarrier
// counts of 30), so the implementation favors clarity and contract checking
// over blocking/vectorization tricks.
#pragma once

#include <complex>
#include <cstddef>
#include <span>
#include <vector>

#include "common/constants.h"

namespace mulink::linalg {

class CMatrix {
 public:
  CMatrix() = default;

  // Zero-initialized rows x cols matrix.
  CMatrix(std::size_t rows, std::size_t cols);

  // Build from row-major data (size must equal rows*cols).
  CMatrix(std::size_t rows, std::size_t cols, std::vector<Complex> data);

  static CMatrix Identity(std::size_t n);

  // Outer product x * y^H (column vector times row covector).
  static CMatrix OuterProduct(const std::vector<Complex>& x,
                              const std::vector<Complex>& y);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return rows_ == 0 || cols_ == 0; }

  // Reshape to rows x cols with every entry zeroed. Reuses the existing
  // capacity, so repeated Resize to the same (or smaller) shape never
  // touches the heap — the workspace pattern relies on this.
  void Resize(std::size_t rows, std::size_t cols);

  // Zero every entry without changing the shape.
  void SetZero();

  Complex& At(std::size_t r, std::size_t c);
  const Complex& At(std::size_t r, std::size_t c) const;

  // Unchecked row-major storage access for hot loops that have already
  // validated their indices. Row r starts at raw() + r * cols().
  Complex* raw() { return data_.data(); }
  const Complex* raw() const { return data_.data(); }

  CMatrix Adjoint() const;  // conjugate transpose
  CMatrix Transpose() const;
  CMatrix Conjugate() const;

  CMatrix operator+(const CMatrix& other) const;
  CMatrix operator-(const CMatrix& other) const;
  CMatrix operator*(const CMatrix& other) const;
  CMatrix operator*(Complex scalar) const;
  CMatrix& operator+=(const CMatrix& other);
  CMatrix& operator*=(Complex scalar);

  // Matrix-vector product. x.size() must equal cols().
  std::vector<Complex> Apply(const std::vector<Complex>& x) const;

  // Allocation-free matrix-vector product: y = A x. x.size() must equal
  // cols(), y.size() must equal rows(), and y must not alias x.
  void ApplyInto(std::span<const Complex> x, std::span<Complex> y) const;

  double FrobeniusNorm() const;

  // Sum of |a_ij|^2 over off-diagonal entries (Jacobi convergence measure).
  double OffDiagonalNormSq() const;

  // True when max_ij |A - A^H| <= tol.
  bool IsHermitian(double tol = 1e-9) const;

  Complex Trace() const;

  const std::vector<Complex>& data() const { return data_; }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<Complex> data_;  // row-major
};

// Hermitian inner product <x, y> = sum conj(x_i) * y_i.
Complex Dot(const std::vector<Complex>& x, const std::vector<Complex>& y);
Complex Dot(std::span<const Complex> x, std::span<const Complex> y);

// Euclidean norm of a complex vector.
double Norm(const std::vector<Complex>& x);
double Norm(std::span<const Complex> x);

}  // namespace mulink::linalg
