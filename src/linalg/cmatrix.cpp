#include "linalg/cmatrix.h"

#include <algorithm>
#include <cmath>

#include "common/assert.h"

namespace mulink::linalg {

CMatrix::CMatrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, Complex(0.0, 0.0)) {}

CMatrix::CMatrix(std::size_t rows, std::size_t cols, std::vector<Complex> data)
    : rows_(rows), cols_(cols), data_(std::move(data)) {
  MULINK_REQUIRE(data_.size() == rows_ * cols_,
                 "CMatrix: data size must equal rows*cols");
}

CMatrix CMatrix::Identity(std::size_t n) {
  CMatrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m.At(i, i) = Complex(1.0, 0.0);
  return m;
}

CMatrix CMatrix::OuterProduct(const std::vector<Complex>& x,
                              const std::vector<Complex>& y) {
  CMatrix m(x.size(), y.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    for (std::size_t j = 0; j < y.size(); ++j) {
      m.At(i, j) = x[i] * std::conj(y[j]);
    }
  }
  return m;
}

void CMatrix::Resize(std::size_t rows, std::size_t cols) {
  rows_ = rows;
  cols_ = cols;
  // mulink-lint: allow(alloc): no-op when shape already matches; callers keep matrices warm
  data_.assign(rows * cols, Complex(0.0, 0.0));
}

void CMatrix::SetZero() {
  std::fill(data_.begin(), data_.end(), Complex(0.0, 0.0));
}

Complex& CMatrix::At(std::size_t r, std::size_t c) {
  MULINK_REQUIRE(r < rows_ && c < cols_, "CMatrix::At out of range");
  return data_[r * cols_ + c];
}

const Complex& CMatrix::At(std::size_t r, std::size_t c) const {
  MULINK_REQUIRE(r < rows_ && c < cols_, "CMatrix::At out of range");
  return data_[r * cols_ + c];
}

CMatrix CMatrix::Adjoint() const {
  CMatrix m(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) {
      m.At(c, r) = std::conj(At(r, c));
    }
  }
  return m;
}

CMatrix CMatrix::Transpose() const {
  CMatrix m(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) {
      m.At(c, r) = At(r, c);
    }
  }
  return m;
}

CMatrix CMatrix::Conjugate() const {
  CMatrix m(rows_, cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) m.data_[i] = std::conj(data_[i]);
  return m;
}

CMatrix CMatrix::operator+(const CMatrix& other) const {
  MULINK_REQUIRE(rows_ == other.rows_ && cols_ == other.cols_,
                 "CMatrix::operator+: dimension mismatch");
  CMatrix m(rows_, cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) {
    m.data_[i] = data_[i] + other.data_[i];
  }
  return m;
}

CMatrix CMatrix::operator-(const CMatrix& other) const {
  MULINK_REQUIRE(rows_ == other.rows_ && cols_ == other.cols_,
                 "CMatrix::operator-: dimension mismatch");
  CMatrix m(rows_, cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) {
    m.data_[i] = data_[i] - other.data_[i];
  }
  return m;
}

CMatrix CMatrix::operator*(const CMatrix& other) const {
  MULINK_REQUIRE(cols_ == other.rows_,
                 "CMatrix::operator*: dimension mismatch");
  CMatrix m(rows_, other.cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const Complex a = At(r, k);
      if (a == Complex(0.0, 0.0)) continue;
      for (std::size_t c = 0; c < other.cols_; ++c) {
        m.At(r, c) += a * other.At(k, c);
      }
    }
  }
  return m;
}

CMatrix CMatrix::operator*(Complex scalar) const {
  CMatrix m(rows_, cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) m.data_[i] = data_[i] * scalar;
  return m;
}

CMatrix& CMatrix::operator+=(const CMatrix& other) {
  MULINK_REQUIRE(rows_ == other.rows_ && cols_ == other.cols_,
                 "CMatrix::operator+=: dimension mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

CMatrix& CMatrix::operator*=(Complex scalar) {
  for (auto& v : data_) v *= scalar;
  return *this;
}

std::vector<Complex> CMatrix::Apply(const std::vector<Complex>& x) const {
  MULINK_REQUIRE(x.size() == cols_, "CMatrix::Apply: dimension mismatch");
  std::vector<Complex> y(rows_, Complex(0.0, 0.0));
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) {
      y[r] += At(r, c) * x[c];
    }
  }
  return y;
}

void CMatrix::ApplyInto(std::span<const Complex> x,
                        std::span<Complex> y) const {
  MULINK_REQUIRE(x.size() == cols_ && y.size() == rows_,
                 "CMatrix::ApplyInto: dimension mismatch");
  const Complex* a = data_.data();
  for (std::size_t r = 0; r < rows_; ++r) {
    Complex acc(0.0, 0.0);
    const Complex* row = a + r * cols_;
    for (std::size_t c = 0; c < cols_; ++c) {
      acc += row[c] * x[c];
    }
    y[r] = acc;
  }
}

double CMatrix::FrobeniusNorm() const {
  double sum = 0.0;
  for (const auto& v : data_) sum += std::norm(v);
  return std::sqrt(sum);
}

double CMatrix::OffDiagonalNormSq() const {
  double sum = 0.0;
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) {
      if (r != c) sum += std::norm(At(r, c));
    }
  }
  return sum;
}

bool CMatrix::IsHermitian(double tol) const {
  if (rows_ != cols_) return false;
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = r; c < cols_; ++c) {
      if (std::abs(At(r, c) - std::conj(At(c, r))) > tol) return false;
    }
  }
  return true;
}

Complex CMatrix::Trace() const {
  MULINK_REQUIRE(rows_ == cols_, "CMatrix::Trace: matrix must be square");
  Complex t(0.0, 0.0);
  for (std::size_t i = 0; i < rows_; ++i) t += At(i, i);
  return t;
}

Complex Dot(const std::vector<Complex>& x, const std::vector<Complex>& y) {
  return Dot(std::span<const Complex>(x), std::span<const Complex>(y));
}

Complex Dot(std::span<const Complex> x, std::span<const Complex> y) {
  MULINK_REQUIRE(x.size() == y.size(), "Dot: dimension mismatch");
  Complex sum(0.0, 0.0);
  for (std::size_t i = 0; i < x.size(); ++i) sum += std::conj(x[i]) * y[i];
  return sum;
}

double Norm(const std::vector<Complex>& x) {
  return Norm(std::span<const Complex>(x));
}

double Norm(std::span<const Complex> x) {
  double sum = 0.0;
  for (const auto& v : x) sum += std::norm(v);
  return std::sqrt(sum);
}

}  // namespace mulink::linalg
