#include "linalg/hermitian_eig.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/assert.h"
#include "common/error.h"

namespace mulink::linalg {

std::vector<Complex> EigenSystem::Vector(std::size_t k) const {
  MULINK_REQUIRE(k < values.size(), "EigenSystem::Vector: index out of range");
  std::vector<Complex> v(vectors.rows());
  VectorInto(k, v);
  return v;
}

void EigenSystem::VectorInto(std::size_t k, std::span<Complex> out) const {
  MULINK_REQUIRE(k < values.size(),
                 "EigenSystem::VectorInto: index out of range");
  MULINK_REQUIRE(out.size() == vectors.rows(),
                 "EigenSystem::VectorInto: output size mismatch");
  for (std::size_t i = 0; i < vectors.rows(); ++i) out[i] = vectors.At(i, k);
}

namespace {

// One complex Jacobi rotation annihilating A[p][q] (and A[q][p]).
//
// With a_pq = r e^{i phi}, the unitary G differing from identity only in
//   G[p][p] = c, G[p][q] = s e^{i phi}, G[q][p] = -s e^{-i phi}, G[q][q] = c
// zeroes the (p,q) entry of G^H A G when tan(2 theta) is chosen from
// tau = (a_qq - a_pp) / (2 r), the complex analogue of the classic real
// symmetric Jacobi update.
void Rotate(CMatrix& a, CMatrix& v, std::size_t p, std::size_t q) {
  const Complex apq = a.At(p, q);
  const double r = std::abs(apq);
  if (r == 0.0) return;
  const Complex phase = apq / r;  // e^{i phi}

  const double app = a.At(p, p).real();
  const double aqq = a.At(q, q).real();
  const double tau = (aqq - app) / (2.0 * r);
  const double sign = tau >= 0.0 ? 1.0 : -1.0;
  const double t = sign / (std::abs(tau) + std::sqrt(1.0 + tau * tau));
  const double c = 1.0 / std::sqrt(1.0 + t * t);
  const double s = t * c;

  const std::size_t n = a.rows();

  // Right-multiply by G: updates columns p and q of A and of the accumulated
  // eigenvector matrix V.
  for (std::size_t i = 0; i < n; ++i) {
    const Complex aip = a.At(i, p);
    const Complex aiq = a.At(i, q);
    a.At(i, p) = c * aip - s * std::conj(phase) * aiq;
    a.At(i, q) = s * phase * aip + c * aiq;

    const Complex vip = v.At(i, p);
    const Complex viq = v.At(i, q);
    v.At(i, p) = c * vip - s * std::conj(phase) * viq;
    v.At(i, q) = s * phase * vip + c * viq;
  }

  // Left-multiply by G^H: updates rows p and q of A.
  for (std::size_t j = 0; j < n; ++j) {
    const Complex apj = a.At(p, j);
    const Complex aqj = a.At(q, j);
    a.At(p, j) = c * apj - s * phase * aqj;
    a.At(q, j) = s * std::conj(phase) * apj + c * aqj;
  }

  // Clamp the annihilated pair to exactly zero and the diagonal to real to
  // keep rounding noise from accumulating across sweeps.
  a.At(p, q) = Complex(0.0, 0.0);
  a.At(q, p) = Complex(0.0, 0.0);
  a.At(p, p) = Complex(a.At(p, p).real(), 0.0);
  a.At(q, q) = Complex(a.At(q, q).real(), 0.0);
}

}  // namespace

EigenSystem HermitianEigen(const CMatrix& input, const JacobiOptions& options) {
  EigenSystem es;
  EigWorkspace ws;
  HermitianEigen(input, es, ws, options);
  return es;
}

void HermitianEigen(const CMatrix& input, EigenSystem& out, EigWorkspace& ws,
                    const JacobiOptions& options) {
  MULINK_REQUIRE(input.rows() == input.cols(),
                 "HermitianEigen: matrix must be square");
  MULINK_REQUIRE(input.IsHermitian(1e-8 * (1.0 + input.FrobeniusNorm())),
                 "HermitianEigen: matrix must be Hermitian");
  const std::size_t n = input.rows();

  CMatrix& a = ws.a;
  CMatrix& v = ws.v;
  a = input;
  v.Resize(n, n);
  for (std::size_t i = 0; i < n; ++i) v.At(i, i) = Complex(1.0, 0.0);

  if (n <= 1) {
    out.vectors = v;
    out.values.clear();
    // mulink-lint: allow(alloc): 1x1 edge case; at most one element
    if (n == 1) out.values.push_back(a.At(0, 0).real());
    return;
  }

  const double scale = std::max(1.0, a.FrobeniusNorm());
  const double threshold_sq =
      options.tolerance * options.tolerance * scale * scale;

  bool converged = false;
  for (int sweep = 0; sweep < options.max_sweeps; ++sweep) {
    if (a.OffDiagonalNormSq() <= threshold_sq) {
      converged = true;
      break;
    }
    for (std::size_t p = 0; p + 1 < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        Rotate(a, v, p, q);
      }
    }
  }
  if (!converged && a.OffDiagonalNormSq() > threshold_sq) {
    throw NumericalError("HermitianEigen: Jacobi sweeps did not converge");
  }

  // Sort ascending by eigenvalue, permuting eigenvector columns to match.
  std::vector<std::size_t>& order = ws.order;
  order.resize(n);  // mulink-lint: allow(alloc): warm scratch
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t i, std::size_t j) {
    return a.At(i, i).real() < a.At(j, j).real();
  });

  out.values.resize(n);  // mulink-lint: allow(alloc): warm output
  out.vectors.Resize(n, n);
  for (std::size_t k = 0; k < n; ++k) {
    out.values[k] = a.At(order[k], order[k]).real();
    for (std::size_t i = 0; i < n; ++i) {
      out.vectors.At(i, k) = v.At(i, order[k]);
    }
  }
}

double SmallestHermitianEigenvalue(const CMatrix& a) {
  MULINK_REQUIRE(a.rows() == a.cols(),
                 "SmallestHermitianEigenvalue: matrix must be square");
  const std::size_t n = a.rows();
  MULINK_REQUIRE(n > 0, "SmallestHermitianEigenvalue: matrix must be nonempty");
  if (n == 1) {
    return a.At(0, 0).real();
  }
  if (n == 2) {
    const double d0 = a.At(0, 0).real();
    const double d1 = a.At(1, 1).real();
    const double mean = 0.5 * (d0 + d1);
    const double half_gap = 0.5 * (d0 - d1);
    return mean - std::sqrt(half_gap * half_gap + std::norm(a.At(0, 1)));
  }
  if (n == 3) {
    // Trigonometric solution of the Hermitian 3x3 characteristic cubic
    // (Smith 1961): shift by q = tr/3, scale by p = sqrt(tr((A-qI)^2)/6),
    // then the eigenvalues are q + 2p cos(phi + 2πk/3).
    const double d0 = a.At(0, 0).real();
    const double d1 = a.At(1, 1).real();
    const double d2 = a.At(2, 2).real();
    const Complex x = a.At(0, 1);
    const Complex y = a.At(0, 2);
    const Complex z = a.At(1, 2);
    const double off_sq = std::norm(x) + std::norm(y) + std::norm(z);
    if (off_sq == 0.0) {
      return std::min(d0, std::min(d1, d2));
    }
    const double q = (d0 + d1 + d2) / 3.0;
    const double b0 = d0 - q;
    const double b1 = d1 - q;
    const double b2 = d2 - q;
    const double p2 = b0 * b0 + b1 * b1 + b2 * b2 + 2.0 * off_sq;
    const double p = std::sqrt(p2 / 6.0);
    // det(B) for Hermitian B = (A - qI)/p with diag b0/p.. and the same
    // (scaled) off-diagonals: b0 b1 b2 - b0|z|^2 - b1|y|^2 - b2|x|^2
    // + 2 Re(x z conj(y)), all real.
    const double inv_p = 1.0 / p;
    const double c0 = b0 * inv_p;
    const double c1 = b1 * inv_p;
    const double c2 = b2 * inv_p;
    const Complex sx = x * inv_p;
    const Complex sy = y * inv_p;
    const Complex sz = z * inv_p;
    const double det_b = c0 * c1 * c2 - c0 * std::norm(sz) -
                         c1 * std::norm(sy) - c2 * std::norm(sx) +
                         2.0 * (sx * sz * std::conj(sy)).real();
    const double r = std::clamp(det_b / 2.0, -1.0, 1.0);
    const double phi = std::acos(r) / 3.0;
    // cos(phi + 2π/3) is the smallest of the three cosines for phi in
    // [0, π/3], so this is the minimum eigenvalue.
    return q + 2.0 * p * std::cos(phi + 2.0 * kPi / 3.0);
  }
  // Cold fallback: full decomposition (allocates; n > 3 never occurs on the
  // scoring hot path).
  return HermitianEigen(a).values.front();
}

}  // namespace mulink::linalg
