#include "linalg/solve.h"

#include <cmath>

#include "common/assert.h"
#include "common/error.h"

namespace mulink::linalg {

std::vector<double> SolveLinear(RMatrix a, std::vector<double> b) {
  std::vector<double> x(a.rows, 0.0);
  SolveLinearInPlace(a, b, x);
  return x;
}

void SolveLinearInPlace(RMatrix& a, std::span<double> b, std::span<double> x) {
  MULINK_REQUIRE(a.rows == a.cols, "SolveLinear: matrix must be square");
  MULINK_REQUIRE(a.rows == b.size(), "SolveLinear: dimension mismatch");
  MULINK_REQUIRE(x.size() == a.rows, "SolveLinear: solution size mismatch");
  const std::size_t n = a.rows;

  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivot.
    std::size_t pivot = col;
    double best = std::abs(a.At(col, col));
    for (std::size_t r = col + 1; r < n; ++r) {
      const double v = std::abs(a.At(r, col));
      if (v > best) {
        best = v;
        pivot = r;
      }
    }
    if (best < 1e-14) {
      throw NumericalError("SolveLinear: singular or near-singular matrix");
    }
    if (pivot != col) {
      for (std::size_t c = 0; c < n; ++c) {
        std::swap(a.At(pivot, c), a.At(col, c));
      }
      std::swap(b[pivot], b[col]);
    }
    // Eliminate below.
    for (std::size_t r = col + 1; r < n; ++r) {
      const double factor = a.At(r, col) / a.At(col, col);
      if (factor == 0.0) continue;
      for (std::size_t c = col; c < n; ++c) {
        a.At(r, c) -= factor * a.At(col, c);
      }
      b[r] -= factor * b[col];
    }
  }

  // Back substitution.
  for (std::size_t ri = n; ri > 0; --ri) {
    const std::size_t r = ri - 1;
    double sum = b[r];
    for (std::size_t c = r + 1; c < n; ++c) sum -= a.At(r, c) * x[c];
    x[r] = sum / a.At(r, r);
  }
}

std::vector<double> SolveLeastSquares(const RMatrix& a,
                                      const std::vector<double>& b) {
  std::vector<double> x;
  LeastSquaresScratch scratch;
  SolveLeastSquaresInto(a, b, x, scratch);
  return x;
}

void SolveLeastSquaresInto(const RMatrix& a, std::span<const double> b,
                           std::vector<double>& x,
                           LeastSquaresScratch& scratch) {
  MULINK_REQUIRE(a.rows == b.size(), "SolveLeastSquares: dimension mismatch");
  MULINK_REQUIRE(a.rows >= a.cols,
                 "SolveLeastSquares: need at least as many rows as unknowns");
  const std::size_t n = a.cols;

  scratch.ata.rows = n;
  scratch.ata.cols = n;
  scratch.ata.data.resize(n * n);  // mulink-lint: allow(alloc): warm scratch
  scratch.atb.resize(n);  // mulink-lint: allow(alloc): warm scratch
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double sum = 0.0;
      for (std::size_t r = 0; r < a.rows; ++r) sum += a.At(r, i) * a.At(r, j);
      scratch.ata.At(i, j) = sum;
    }
    double sum = 0.0;
    for (std::size_t r = 0; r < a.rows; ++r) sum += a.At(r, i) * b[r];
    scratch.atb[i] = sum;
  }
  x.resize(n);  // mulink-lint: allow(alloc): warm output
  SolveLinearInPlace(scratch.ata, scratch.atb, x);
}

}  // namespace mulink::linalg
