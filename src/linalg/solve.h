// Small dense real linear solves and least squares, used by the fitting
// utilities (logarithmic sensitivity fits of Fig. 3) and model calibration.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace mulink::linalg {

// Row-major dense real matrix, minimal interface for the solver below.
struct RMatrix {
  std::size_t rows = 0;
  std::size_t cols = 0;
  std::vector<double> data;

  RMatrix() = default;
  RMatrix(std::size_t r, std::size_t c) : rows(r), cols(c), data(r * c, 0.0) {}

  double& At(std::size_t r, std::size_t c) { return data[r * cols + c]; }
  double At(std::size_t r, std::size_t c) const { return data[r * cols + c]; }
};

// Solve A x = b via Gaussian elimination with partial pivoting.
// Throws NumericalError on (near-)singular systems.
std::vector<double> SolveLinear(RMatrix a, std::vector<double> b);

// In-place core of SolveLinear: destroys `a` and `b`, writes the solution to
// `x` (x.size() == a.rows). No heap traffic — the allocating overload above
// is a thin wrapper around this.
void SolveLinearInPlace(RMatrix& a, std::span<double> b, std::span<double> x);

// Minimize ||A x - b||_2 via the normal equations (A^T A) x = A^T b.
// Adequate for the tiny, well-conditioned design matrices in this project.
std::vector<double> SolveLeastSquares(const RMatrix& a,
                                      const std::vector<double>& b);

// Reusable buffers for SolveLeastSquaresInto; grow on first use.
struct LeastSquaresScratch {
  RMatrix ata;
  std::vector<double> atb;
};

// Scratch variant: allocation-free once `scratch` and `x` have warmed up to
// the problem shape. `x` is resized to a.cols.
void SolveLeastSquaresInto(const RMatrix& a, std::span<const double> b,
                           std::vector<double>& x,
                           LeastSquaresScratch& scratch);

}  // namespace mulink::linalg
