// Small dense real linear solves and least squares, used by the fitting
// utilities (logarithmic sensitivity fits of Fig. 3) and model calibration.
#pragma once

#include <cstddef>
#include <vector>

namespace mulink::linalg {

// Row-major dense real matrix, minimal interface for the solver below.
struct RMatrix {
  std::size_t rows = 0;
  std::size_t cols = 0;
  std::vector<double> data;

  RMatrix() = default;
  RMatrix(std::size_t r, std::size_t c) : rows(r), cols(c), data(r * c, 0.0) {}

  double& At(std::size_t r, std::size_t c) { return data[r * cols + c]; }
  double At(std::size_t r, std::size_t c) const { return data[r * cols + c]; }
};

// Solve A x = b via Gaussian elimination with partial pivoting.
// Throws NumericalError on (near-)singular systems.
std::vector<double> SolveLinear(RMatrix a, std::vector<double> b);

// Minimize ||A x - b||_2 via the normal equations (A^T A) x = A^T b.
// Adequate for the tiny, well-conditioned design matrices in this project.
std::vector<double> SolveLeastSquares(const RMatrix& a,
                                      const std::vector<double>& b);

}  // namespace mulink::linalg
