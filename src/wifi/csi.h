// Channel State Information packet — what the (emulated) NIC hands to the
// detection pipeline. Mirrors what the Intel 5300 CSI Tool reports: one
// complex gain per (RX antenna, subcarrier) pair plus capture metadata.
#pragma once

#include <vector>

#include "common/constants.h"
#include "linalg/cmatrix.h"

namespace mulink::wifi {

struct CsiPacket {
  // rows = RX antennas, cols = subcarriers.
  linalg::CMatrix csi;

  double timestamp_s = 0.0;
  // AGC-style total receive power indicator (dB, arbitrary reference).
  double rssi_db = 0.0;
  std::uint64_t sequence = 0;

  std::size_t NumAntennas() const { return csi.rows(); }
  std::size_t NumSubcarriers() const { return csi.cols(); }

  // |H(f_k)|^2 on one antenna/subcarrier.
  double SubcarrierPower(std::size_t antenna, std::size_t subcarrier) const;

  // 10*lg(|H|^2) with a floor to keep log of quantized zeros finite.
  double SubcarrierPowerDb(std::size_t antenna, std::size_t subcarrier) const;

  // One antenna's CFR row as a vector (for delay-domain / mu computations).
  std::vector<Complex> AntennaCfr(std::size_t antenna) const;

  // Total power summed over antennas and subcarriers.
  double TotalPower() const;
};

}  // namespace mulink::wifi
