// Forward channel model: propagation paths -> per-antenna, per-subcarrier
// Channel Frequency Response (the noiseless CSI of Eq. 1's Fourier pair).
#pragma once

#include "linalg/cmatrix.h"
#include "propagation/path.h"
#include "wifi/array.h"
#include "wifi/band.h"

namespace mulink::wifi {

// H[m][k] = sum_i a_i(f_k) * exp(-j 2 pi f_k (d_i + delta_m(theta_i)) / c)
// where delta_m is the antenna-m excess path length for the path's angle of
// arrival. Rows = antennas, cols = subcarriers.
linalg::CMatrix SynthesizeCfr(const propagation::PathSet& paths,
                              const BandPlan& band,
                              const UniformLinearArray& array);

// Single-antenna convenience (row 0 of the above with a 1-element array).
std::vector<Complex> SynthesizeCfrSingle(const propagation::PathSet& paths,
                                         const BandPlan& band);

}  // namespace mulink::wifi
