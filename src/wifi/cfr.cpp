#include "wifi/cfr.h"

#include <cmath>

#include "common/assert.h"

namespace mulink::wifi {

linalg::CMatrix SynthesizeCfr(const propagation::PathSet& paths,
                              const BandPlan& band,
                              const UniformLinearArray& array) {
  MULINK_REQUIRE(!paths.empty(), "SynthesizeCfr: empty path set");
  const std::size_t num_antennas = array.num_antennas();
  const std::size_t num_subcarriers = band.NumSubcarriers();
  linalg::CMatrix h(num_antennas, num_subcarriers);

  for (const auto& path : paths) {
    if (path.gain_at_center == 0.0) continue;
    const double theta = array.BroadsideAngle(path.arrival_direction_rad);
    for (std::size_t k = 0; k < num_subcarriers; ++k) {
      const double fk = band.FrequencyHz(k);
      const double gain = path.GainAt(fk);
      for (std::size_t m = 0; m < num_antennas; ++m) {
        const double total_length =
            path.length_m + array.ExcessPathLength(m, theta);
        const double phase = -2.0 * kPi * fk * total_length / kSpeedOfLight;
        h.At(m, k) += gain * Complex(std::cos(phase), std::sin(phase));
      }
    }
  }
  return h;
}

std::vector<Complex> SynthesizeCfrSingle(const propagation::PathSet& paths,
                                         const BandPlan& band) {
  const UniformLinearArray single(1, kWavelength / 2.0, 0.0);
  const auto h = SynthesizeCfr(paths, band, single);
  std::vector<Complex> row(band.NumSubcarriers());
  for (std::size_t k = 0; k < band.NumSubcarriers(); ++k) row[k] = h.At(0, k);
  return row;
}

}  // namespace mulink::wifi
