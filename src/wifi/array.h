// Uniform linear antenna array (ULA) at the receiver.
//
// The paper's receiver is an Intel 5300 with three external omnidirectional
// antennas at half-wavelength spacing; Sec. IV-B's Eq. 16 is the classic
// two-element phase relation, and MUSIC generalizes it. This type owns the
// array geometry and the steering-vector math shared by the synthesizer
// (forward model) and the MUSIC estimator (inverse model).
#pragma once

#include <span>
#include <vector>

#include "common/constants.h"
#include "geometry/vec2.h"

namespace mulink::wifi {

class UniformLinearArray {
 public:
  // Three antennas spaced half a wavelength apart, array axis along
  // `axis_angle_rad` (the broadside normal is axis + 90 degrees).
  static UniformLinearArray HalfWavelength3(double axis_angle_rad = 0.0);

  UniformLinearArray(std::size_t num_antennas, double spacing_m,
                     double axis_angle_rad);

  std::size_t num_antennas() const { return num_antennas_; }
  double spacing_m() const { return spacing_m_; }
  double axis_angle_rad() const { return axis_angle_rad_; }

  // Signed position of antenna m along the array axis, centered on the array
  // phase center (so offsets sum to zero).
  double AntennaOffset(std::size_t m) const;

  // Broadside-relative angle of arrival in [-pi/2, pi/2] for a ray whose
  // *travel* direction (radians from +x) is `arrival_direction_rad`.
  // Positive theta = source toward the positive array axis. Front/back
  // ambiguity is inherent to a ULA and folded into the same theta.
  double BroadsideAngle(double arrival_direction_rad) const;

  // Extra path length (m) seen by antenna m for a plane wave from broadside
  // angle theta: -offset(m) * sin(theta).
  double ExcessPathLength(std::size_t m, double theta_rad) const;

  // Steering vector a(theta) at frequency f: element m is
  // exp(-j 2 pi f * ExcessPathLength(m, theta) / c).
  std::vector<Complex> SteeringVector(double theta_rad, double freq_hz) const;

  // Allocation-free variant: out.size() must equal num_antennas().
  void SteeringVectorInto(double theta_rad, double freq_hz,
                          std::span<Complex> out) const;

 private:
  std::size_t num_antennas_;
  double spacing_m_;
  double axis_angle_rad_;
};

}  // namespace mulink::wifi
