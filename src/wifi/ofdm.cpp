#include "wifi/ofdm.h"

#include <cmath>

#include "common/assert.h"
#include "dsp/fft.h"

namespace mulink::wifi {

namespace {

constexpr int kMaxIndex = 28;

// Half-width of the windowed-sinc fractional-delay kernel.
constexpr int kSincHalfWidth = 6;

double WindowedSinc(double x) {
  // sinc(x) * Hann window over [-kSincHalfWidth, kSincHalfWidth].
  if (std::abs(x) >= kSincHalfWidth) return 0.0;
  const double sinc =
      x == 0.0 ? 1.0 : std::sin(kPi * x) / (kPi * x);
  const double window =
      0.5 * (1.0 + std::cos(kPi * x / kSincHalfWidth));
  return sinc * window;
}

}  // namespace

std::vector<int> Ht20OccupiedSubcarriers() {
  std::vector<int> indices;
  indices.reserve(56);
  for (int i = -kMaxIndex; i <= kMaxIndex; ++i) {
    if (i != 0) indices.push_back(i);
  }
  return indices;
}

std::vector<double> TrainingSequence() {
  // Deterministic +-1 sequence (LCG-driven); any full-power sequence works
  // for least-squares estimation.
  std::vector<double> seq;
  seq.reserve(56);
  std::uint64_t state = 0x2545F4914F6CDD1DULL;
  for (int i = 0; i < 56; ++i) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    seq.push_back((state >> 62) & 1 ? 1.0 : -1.0);
  }
  return seq;
}

std::vector<Complex> ModulateTrainingSymbol(const OfdmConfig& config) {
  MULINK_REQUIRE(dsp::IsPowerOfTwo(config.fft_size),
                 "Ofdm: FFT size must be a power of two");
  MULINK_REQUIRE(config.cyclic_prefix < config.fft_size,
                 "Ofdm: cyclic prefix must be shorter than the symbol");
  MULINK_REQUIRE(config.fft_size >= 2 * kMaxIndex + 2,
                 "Ofdm: FFT too small for the HT20 subcarrier map");

  const auto occupied = Ht20OccupiedSubcarriers();
  const auto training = TrainingSequence();
  std::vector<Complex> bins(config.fft_size, Complex(0.0, 0.0));
  for (std::size_t i = 0; i < occupied.size(); ++i) {
    const int idx = occupied[i];
    const std::size_t bin =
        idx >= 0 ? static_cast<std::size_t>(idx)
                 : config.fft_size - static_cast<std::size_t>(-idx);
    bins[bin] = Complex(training[i], 0.0);
  }
  dsp::Ifft(bins);

  std::vector<Complex> symbol;
  symbol.reserve(config.cyclic_prefix + config.fft_size);
  for (std::size_t i = config.fft_size - config.cyclic_prefix;
       i < config.fft_size; ++i) {
    symbol.push_back(bins[i]);
  }
  symbol.insert(symbol.end(), bins.begin(), bins.end());
  return symbol;
}

std::vector<Complex> ApplyChannel(const std::vector<Complex>& samples,
                                  const propagation::PathSet& paths,
                                  const UniformLinearArray& array,
                                  std::size_t antenna, double carrier_hz,
                                  const OfdmConfig& config, Rng& rng) {
  MULINK_REQUIRE(!samples.empty(), "ApplyChannel: empty input");
  MULINK_REQUIRE(!paths.empty(), "ApplyChannel: empty path set");
  MULINK_REQUIRE(carrier_hz > 0.0, "ApplyChannel: carrier must be > 0");

  // Build the discrete baseband CIR with fractional-delay sinc taps.
  double max_delay_samples = 0.0;
  for (const auto& path : paths) {
    const double total_length =
        path.length_m +
        array.ExcessPathLength(antenna,
                               array.BroadsideAngle(path.arrival_direction_rad));
    max_delay_samples = std::max(
        max_delay_samples, total_length / kSpeedOfLight * config.sample_rate_hz);
  }
  const auto cir_length =
      static_cast<std::size_t>(
          std::ceil(max_delay_samples + config.bulk_delay_samples)) +
      2 * kSincHalfWidth + 1;
  std::vector<Complex> cir(cir_length, Complex(0.0, 0.0));
  for (const auto& path : paths) {
    if (path.gain_at_center == 0.0) continue;
    const double theta = array.BroadsideAngle(path.arrival_direction_rad);
    const double total_length =
        path.length_m + array.ExcessPathLength(antenna, theta);
    const double delay_samples =
        total_length / kSpeedOfLight * config.sample_rate_hz +
        config.bulk_delay_samples;
    const double carrier_phase =
        -2.0 * kPi * carrier_hz * total_length / kSpeedOfLight;
    const Complex coeff =
        path.gain_at_center *
        Complex(std::cos(carrier_phase), std::sin(carrier_phase));
    const int center = static_cast<int>(std::floor(delay_samples));
    for (int k = center - kSincHalfWidth + 1; k <= center + kSincHalfWidth;
         ++k) {
      if (k < 0 || static_cast<std::size_t>(k) >= cir.size()) continue;
      cir[static_cast<std::size_t>(k)] +=
          coeff * WindowedSinc(static_cast<double>(k) - delay_samples);
    }
  }

  // Convolve.
  std::vector<Complex> out(samples.size() + cir.size() - 1,
                           Complex(0.0, 0.0));
  for (std::size_t n = 0; n < samples.size(); ++n) {
    if (samples[n] == Complex(0.0, 0.0)) continue;
    for (std::size_t k = 0; k < cir.size(); ++k) {
      out[n + k] += samples[n] * cir[k];
    }
  }

  // Carrier frequency offset.
  if (config.cfo_hz != 0.0) {
    for (std::size_t n = 0; n < out.size(); ++n) {
      const double phase = 2.0 * kPi * config.cfo_hz *
                           static_cast<double>(n) / config.sample_rate_hz;
      out[n] *= Complex(std::cos(phase), std::sin(phase));
    }
  }

  // AWGN at the configured SNR.
  if (config.snr_db < 200.0) {
    double power = 0.0;
    for (const auto& y : out) power += std::norm(y);
    power /= static_cast<double>(out.size());
    const double sigma =
        std::sqrt(power * std::pow(10.0, -config.snr_db / 10.0) / 2.0);
    for (auto& y : out) {
      y += Complex(rng.Gaussian(0.0, sigma), rng.Gaussian(0.0, sigma));
    }
  }
  return out;
}

std::vector<Complex> EstimateChannel(const std::vector<Complex>& received,
                                     const OfdmConfig& config) {
  MULINK_REQUIRE(received.size() >= config.cyclic_prefix + config.fft_size,
                 "EstimateChannel: received symbol too short");
  std::vector<Complex> bins(
      received.begin() + static_cast<std::ptrdiff_t>(config.cyclic_prefix),
      received.begin() +
          static_cast<std::ptrdiff_t>(config.cyclic_prefix + config.fft_size));
  dsp::Fft(bins);

  const auto occupied = Ht20OccupiedSubcarriers();
  const auto training = TrainingSequence();
  std::vector<Complex> estimate(occupied.size());
  for (std::size_t i = 0; i < occupied.size(); ++i) {
    const int idx = occupied[i];
    const std::size_t bin =
        idx >= 0 ? static_cast<std::size_t>(idx)
                 : config.fft_size - static_cast<std::size_t>(-idx);
    // Undo the known bulk delay's linear phase.
    const double phase = 2.0 * kPi * static_cast<double>(idx) *
                         config.bulk_delay_samples /
                         static_cast<double>(config.fft_size);
    estimate[i] = bins[bin] / training[i] *
                  Complex(std::cos(phase), std::sin(phase));
  }
  return estimate;
}

std::vector<Complex> ExtractReported(const std::vector<Complex>& ht20_estimate,
                                     const BandPlan& band) {
  const auto occupied = Ht20OccupiedSubcarriers();
  MULINK_REQUIRE(ht20_estimate.size() == occupied.size(),
                 "ExtractReported: expected a 56-subcarrier HT20 estimate");
  std::vector<Complex> reported;
  reported.reserve(band.NumSubcarriers());
  for (int wanted : band.indices()) {
    bool found = false;
    for (std::size_t i = 0; i < occupied.size(); ++i) {
      if (occupied[i] == wanted) {
        reported.push_back(ht20_estimate[i]);
        found = true;
        break;
      }
    }
    MULINK_REQUIRE(found, "ExtractReported: band index not in the HT20 map");
  }
  return reported;
}

double EstimateCfo(const std::vector<Complex>& received,
                   const OfdmConfig& config) {
  MULINK_REQUIRE(received.size() >= config.cyclic_prefix + config.fft_size,
                 "EstimateCfo: received symbol too short");
  Complex acc(0.0, 0.0);
  for (std::size_t n = 0; n < config.cyclic_prefix; ++n) {
    acc += std::conj(received[n]) * received[n + config.fft_size];
  }
  const double phase = std::arg(acc);
  return phase * config.sample_rate_hz /
         (2.0 * kPi * static_cast<double>(config.fft_size));
}

std::vector<Complex> CorrectCfo(const std::vector<Complex>& received,
                                double cfo_hz, double sample_rate_hz) {
  MULINK_REQUIRE(sample_rate_hz > 0.0,
                 "CorrectCfo: sample rate must be > 0");
  std::vector<Complex> out(received.size());
  for (std::size_t n = 0; n < received.size(); ++n) {
    const double phase =
        -2.0 * kPi * cfo_hz * static_cast<double>(n) / sample_rate_hz;
    out[n] = received[n] * Complex(std::cos(phase), std::sin(phase));
  }
  return out;
}

linalg::CMatrix EstimateCfrViaOfdm(const propagation::PathSet& paths,
                                   const BandPlan& band,
                                   const UniformLinearArray& array,
                                   const OfdmConfig& config, Rng& rng) {
  const auto tx_symbol = ModulateTrainingSymbol(config);
  linalg::CMatrix csi(array.num_antennas(), band.NumSubcarriers());
  for (std::size_t m = 0; m < array.num_antennas(); ++m) {
    const auto received = ApplyChannel(tx_symbol, paths, array, m,
                                       band.center_hz(), config, rng);
    const auto estimate = EstimateChannel(received, config);
    const auto reported = ExtractReported(estimate, band);
    for (std::size_t k = 0; k < reported.size(); ++k) {
      csi.At(m, k) = reported[k];
    }
  }
  return csi;
}

}  // namespace mulink::wifi
