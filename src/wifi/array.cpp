#include "wifi/array.h"

#include <algorithm>
#include <cmath>

#include "common/assert.h"

namespace mulink::wifi {

UniformLinearArray UniformLinearArray::HalfWavelength3(double axis_angle_rad) {
  return UniformLinearArray(3, kWavelength / 2.0, axis_angle_rad);
}

UniformLinearArray::UniformLinearArray(std::size_t num_antennas,
                                       double spacing_m,
                                       double axis_angle_rad)
    : num_antennas_(num_antennas),
      spacing_m_(spacing_m),
      axis_angle_rad_(axis_angle_rad) {
  MULINK_REQUIRE(num_antennas_ >= 1, "ULA: need at least one antenna");
  MULINK_REQUIRE(spacing_m_ > 0.0, "ULA: spacing must be > 0");
}

double UniformLinearArray::AntennaOffset(std::size_t m) const {
  MULINK_REQUIRE(m < num_antennas_, "ULA: antenna index out of range");
  const double center = static_cast<double>(num_antennas_ - 1) / 2.0;
  return (static_cast<double>(m) - center) * spacing_m_;
}

double UniformLinearArray::BroadsideAngle(double arrival_direction_rad) const {
  // Unit vector pointing from the RX back toward the source.
  const double toward_source = arrival_direction_rad + kPi;
  // Component along the array axis = sin(theta) with theta from broadside.
  const double along_axis = std::cos(toward_source - axis_angle_rad_);
  return std::asin(std::clamp(along_axis, -1.0, 1.0));
}

double UniformLinearArray::ExcessPathLength(std::size_t m,
                                            double theta_rad) const {
  return -AntennaOffset(m) * std::sin(theta_rad);
}

std::vector<Complex> UniformLinearArray::SteeringVector(double theta_rad,
                                                        double freq_hz) const {
  std::vector<Complex> a(num_antennas_);
  SteeringVectorInto(theta_rad, freq_hz, a);
  return a;
}

void UniformLinearArray::SteeringVectorInto(double theta_rad, double freq_hz,
                                            std::span<Complex> out) const {
  MULINK_REQUIRE(freq_hz > 0.0, "ULA: frequency must be > 0");
  MULINK_REQUIRE(out.size() == num_antennas_,
                 "ULA: steering vector size mismatch");
  for (std::size_t m = 0; m < num_antennas_; ++m) {
    const double phase =
        -2.0 * kPi * freq_hz * ExcessPathLength(m, theta_rad) / kSpeedOfLight;
    out[m] = Complex(std::cos(phase), std::sin(phase));
  }
}

}  // namespace mulink::wifi
