#include "wifi/band.h"

#include "common/assert.h"

namespace mulink::wifi {

BandPlan BandPlan::Intel5300Channel11() { return Intel5300Channel(11); }

BandPlan BandPlan::Intel5300Channel(int channel) {
  MULINK_REQUIRE(channel >= 1 && channel <= 13,
                 "BandPlan: 2.4 GHz channel must be in [1, 13]");
  const double center_hz = 2.412e9 + 5e6 * static_cast<double>(channel - 1);
  std::vector<int> indices(kIntel5300SubcarrierIndices.begin(),
                           kIntel5300SubcarrierIndices.end());
  return BandPlan(center_hz, std::move(indices), kSubcarrierSpacingHz);
}

BandPlan::BandPlan(double center_hz, std::vector<int> subcarrier_indices,
                   double spacing_hz)
    : center_hz_(center_hz),
      indices_(std::move(subcarrier_indices)),
      spacing_hz_(spacing_hz) {
  MULINK_REQUIRE(center_hz_ > 0.0, "BandPlan: center frequency must be > 0");
  MULINK_REQUIRE(spacing_hz_ > 0.0, "BandPlan: spacing must be > 0");
  MULINK_REQUIRE(!indices_.empty(), "BandPlan: need at least one subcarrier");
}

double BandPlan::FrequencyHz(std::size_t k) const {
  return center_hz_ + OffsetHz(k);
}

double BandPlan::OffsetHz(std::size_t k) const {
  MULINK_REQUIRE(k < indices_.size(), "BandPlan: subcarrier out of range");
  return spacing_hz_ * static_cast<double>(indices_[k]);
}

std::vector<double> BandPlan::AllFrequenciesHz() const {
  std::vector<double> fs(indices_.size());
  for (std::size_t k = 0; k < indices_.size(); ++k) fs[k] = FrequencyHz(k);
  return fs;
}

std::vector<double> BandPlan::AllOffsetsHz() const {
  std::vector<double> fs(indices_.size());
  for (std::size_t k = 0; k < indices_.size(); ++k) fs[k] = OffsetHz(k);
  return fs;
}

}  // namespace mulink::wifi
