// First-principles OFDM baseband chain: training-symbol transmission,
// time-domain multipath channel, and least-squares CSI estimation.
//
// Everywhere else the simulator evaluates the channel directly in the
// frequency domain (wifi::SynthesizeCfr). Real NICs cannot: the Intel 5300
// estimates CSI from the HT-LTF training symbol after the FFT. This module
// implements that receive path — 64-point OFDM symbol with cyclic prefix,
// fractional-delay multipath convolution, CFO, AWGN, FFT, per-subcarrier
// LS division — and the tests confirm it reproduces SynthesizeCfr, closing
// the loop on the substitution DESIGN.md makes for the CSI Tool.
#pragma once

#include <vector>

#include "common/rng.h"
#include "linalg/cmatrix.h"
#include "propagation/path.h"
#include "wifi/array.h"
#include "wifi/band.h"

namespace mulink::wifi {

struct OfdmConfig {
  std::size_t fft_size = 64;
  std::size_t cyclic_prefix = 16;
  double sample_rate_hz = 20e6;  // HT20
  // Carrier frequency offset (Hz) between TX and RX oscillators.
  double cfo_hz = 0.0;
  // AWGN SNR at the receiver input (dB); values >= 200 disable noise.
  double snr_db = 300.0;
  // Constant bulk delay (samples) added to every path so the windowed-sinc
  // kernel's acausal half is representable; compensated in EstimateChannel.
  double bulk_delay_samples = 6.0;
};

// The HT20 occupied (data+pilot) subcarrier indices: -28..-1, 1..28.
std::vector<int> Ht20OccupiedSubcarriers();

// Deterministic +-1 training sequence on the occupied subcarriers
// (HT-LTF-flavored; the exact values are irrelevant to LS estimation).
std::vector<double> TrainingSequence();

// One OFDM training symbol in time domain (cyclic prefix + body).
std::vector<Complex> ModulateTrainingSymbol(const OfdmConfig& config = {});

// Pass baseband samples through the multipath channel: each path becomes a
// fractional-delay tap (windowed-sinc interpolated) with the carrier-phase
// coefficient a_i * exp(-j 2 pi f_c tau_i), offset per RX antenna by the
// array's excess path length. Adds CFO rotation and AWGN per `config`.
std::vector<Complex> ApplyChannel(const std::vector<Complex>& samples,
                                  const propagation::PathSet& paths,
                                  const UniformLinearArray& array,
                                  std::size_t antenna, double carrier_hz,
                                  const OfdmConfig& config, Rng& rng);

// LS channel estimate from a received training symbol: remove CP, FFT,
// divide by the known training values. Returns one complex gain per
// occupied subcarrier (order of Ht20OccupiedSubcarriers()).
std::vector<Complex> EstimateChannel(const std::vector<Complex>& received,
                                     const OfdmConfig& config = {});

// Reduce a 56-subcarrier HT20 estimate to the Intel 5300's 30 reported
// subcarriers (the band plan's indices).
std::vector<Complex> ExtractReported(const std::vector<Complex>& ht20_estimate,
                                     const BandPlan& band);

// Estimate the carrier frequency offset from cyclic-prefix correlation:
// the CP repeats the symbol tail N samples later, so the phase of
// sum conj(y[n]) y[n+N] over the prefix is 2 pi cfo N / fs.
double EstimateCfo(const std::vector<Complex>& received,
                   const OfdmConfig& config = {});

// De-rotate received samples by the estimated CFO.
std::vector<Complex> CorrectCfo(const std::vector<Complex>& received,
                                double cfo_hz, double sample_rate_hz);

// End-to-end: paths -> OFDM transmission per antenna -> estimated CSI
// matrix (antennas x reported subcarriers). The from-first-principles
// counterpart of SynthesizeCfr.
linalg::CMatrix EstimateCfrViaOfdm(const propagation::PathSet& paths,
                                   const BandPlan& band,
                                   const UniformLinearArray& array,
                                   const OfdmConfig& config, Rng& rng);

}  // namespace mulink::wifi
