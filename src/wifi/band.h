// OFDM band plan: which subcarriers the NIC reports and at what RF frequency.
//
// Defaults to 802.11n HT20 at 2.4 GHz channel 11 with the Intel 5300 CSI
// Tool's 30-subcarrier index map (paper footnote 1).
#pragma once

#include <vector>

#include "common/constants.h"

namespace mulink::wifi {

class BandPlan {
 public:
  // The paper's configuration: channel 11, Intel 5300 30-subcarrier map.
  static BandPlan Intel5300Channel11();

  // Any 2.4 GHz channel 1..13 (center 2.412 GHz + 5 MHz per step) with the
  // same Intel 5300 subcarrier map — for channel-sweeping adaptation in the
  // style of Kaltiokallio et al. [28].
  static BandPlan Intel5300Channel(int channel);

  // Custom plan (center frequency in Hz, subcarrier indices, spacing in Hz).
  BandPlan(double center_hz, std::vector<int> subcarrier_indices,
           double spacing_hz);

  std::size_t NumSubcarriers() const { return indices_.size(); }

  // Absolute RF frequency of subcarrier position k.
  double FrequencyHz(std::size_t k) const;

  // Baseband offset (Hz relative to the carrier) of subcarrier position k.
  double OffsetHz(std::size_t k) const;

  const std::vector<int>& indices() const { return indices_; }
  double center_hz() const { return center_hz_; }
  double spacing_hz() const { return spacing_hz_; }
  double CenterWavelength() const { return kSpeedOfLight / center_hz_; }

  std::vector<double> AllFrequenciesHz() const;
  std::vector<double> AllOffsetsHz() const;

 private:
  double center_hz_;
  std::vector<int> indices_;
  double spacing_hz_;
};

}  // namespace mulink::wifi
