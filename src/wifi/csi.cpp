#include "wifi/csi.h"

#include <cmath>

#include "common/assert.h"

namespace mulink::wifi {

double CsiPacket::SubcarrierPower(std::size_t antenna,
                                  std::size_t subcarrier) const {
  return std::norm(csi.At(antenna, subcarrier));
}

double CsiPacket::SubcarrierPowerDb(std::size_t antenna,
                                    std::size_t subcarrier) const {
  constexpr double kFloor = 1e-30;
  return 10.0 * std::log10(std::max(SubcarrierPower(antenna, subcarrier),
                                    kFloor));
}

std::vector<Complex> CsiPacket::AntennaCfr(std::size_t antenna) const {
  MULINK_REQUIRE(antenna < csi.rows(), "CsiPacket: antenna out of range");
  std::vector<Complex> row(csi.cols());
  for (std::size_t k = 0; k < csi.cols(); ++k) row[k] = csi.At(antenna, k);
  return row;
}

double CsiPacket::TotalPower() const {
  double sum = 0.0;
  for (std::size_t m = 0; m < csi.rows(); ++m) {
    for (std::size_t k = 0; k < csi.cols(); ++k) {
      sum += std::norm(csi.At(m, k));
    }
  }
  return sum;
}

}  // namespace mulink::wifi
