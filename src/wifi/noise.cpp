#include "wifi/noise.h"

#include <cmath>

#include "common/assert.h"
#include "common/constants.h"

namespace mulink::wifi {

void ApplyNoise(linalg::CMatrix& cfr, const std::vector<double>& offsets_hz,
                const NoiseModel& model, Rng& rng) {
  MULINK_REQUIRE(cfr.cols() == offsets_hz.size(),
                 "ApplyNoise: offsets size must match subcarrier count");
  const std::size_t rows = cfr.rows();
  const std::size_t cols = cfr.cols();
  if (rows == 0 || cols == 0) return;

  // Mean signal power per subcarrier sets the AWGN scale.
  double mean_power = 0.0;
  for (std::size_t m = 0; m < rows; ++m) {
    for (std::size_t k = 0; k < cols; ++k) {
      mean_power += std::norm(cfr.At(m, k));
    }
  }
  mean_power /= static_cast<double>(rows * cols);
  const double noise_power =
      mean_power * std::pow(10.0, -model.snr_db / 10.0);
  const double noise_sigma = std::sqrt(noise_power / 2.0);  // per I/Q leg

  // Packet-level oscillator state shared by all antennas.
  const double common_phase =
      model.random_common_phase ? rng.Uniform(0.0, 2.0 * kPi) : 0.0;
  const double sto = model.sto_range_s > 0.0
                         ? rng.Uniform(-model.sto_range_s, model.sto_range_s)
                         : 0.0;
  const double gain = model.gain_drift_db > 0.0
                          ? std::pow(10.0, rng.Gaussian(0.0, model.gain_drift_db) / 20.0)
                          : 1.0;

  for (std::size_t k = 0; k < cols; ++k) {
    const double phase = common_phase - 2.0 * kPi * offsets_hz[k] * sto;
    const Complex rot = gain * Complex(std::cos(phase), std::sin(phase));
    for (std::size_t m = 0; m < rows; ++m) {
      const Complex awgn(rng.Gaussian(0.0, noise_sigma),
                         rng.Gaussian(0.0, noise_sigma));
      cfr.At(m, k) = cfr.At(m, k) * rot + awgn;
    }
  }
}

}  // namespace mulink::wifi
