// Receiver impairment model applied to the ideal CFR before the NIC
// quantizes it.
//
// The paper leans on two facts about commodity-WiFi measurements that this
// model reproduces:
//  (1) Raw CSI phase is unusable across packets — carrier frequency offset
//      puts a random common phase on every packet, and sampling time offset
//      puts a random linear phase slope across subcarriers. This is *why*
//      the multipath factor (a power quantity) is the paper's proxy and why
//      calibration [26] exists.
//  (2) Amplitudes are comparatively stable but carry thermal noise.
#pragma once

#include "common/rng.h"
#include "linalg/cmatrix.h"

namespace mulink::wifi {

struct NoiseModel {
  // Thermal noise: per-subcarrier complex AWGN at this SNR relative to the
  // mean subcarrier signal power.
  double snr_db = 28.0;

  // Random common phase per packet (CFO / PLL), uniform in [0, 2 pi) when on.
  bool random_common_phase = true;

  // Sampling time offset: per packet, a uniform delay in +-sto_range_s
  // applied as a linear phase across subcarrier offsets.
  double sto_range_s = 40e-9;

  // Fast (per-packet, i.i.d.) multiplicative gain ripple, log-normal with
  // this standard deviation in dB. Slow correlated drift lives in
  // nic::ChannelSimConfig::slow_gain_drift_db.
  double gain_drift_db = 0.2;
};

// Apply the impairments in place. `offsets_hz` are the subcarrier baseband
// offsets (for the STO phase slope); rows of `cfr` are antennas (they share
// one oscillator, hence one common phase / STO per packet, as on real NICs).
void ApplyNoise(linalg::CMatrix& cfr, const std::vector<double>& offsets_hz,
                const NoiseModel& model, Rng& rng);

}  // namespace mulink::wifi
