#include "nic/channel_simulator.h"

#include <cmath>

#include "common/assert.h"
#include "common/constants.h"

namespace mulink::nic {

using geometry::Vec2;

ChannelSimulator::ChannelSimulator(geometry::Room room, Vec2 tx, Vec2 rx,
                                   wifi::UniformLinearArray array,
                                   wifi::BandPlan band,
                                   ChannelSimConfig config)
    : room_(std::move(room)),
      tx_(tx),
      rx_(rx),
      array_(std::move(array)),
      band_(std::move(band)),
      config_(config),
      emulator_(config.nic),
      offsets_hz_(band_.AllOffsetsHz()) {
  MULINK_REQUIRE(config_.packet_rate_hz > 0.0,
                 "ChannelSimulator: packet rate must be > 0");
  if (config_.faults.enabled) injector_.emplace(config_.faults);
  walker_positions_.reserve(config_.walkers.size());
  for (const auto& w : config_.walkers) walker_positions_.push_back(w.base);
}

geometry::Room ChannelSimulator::JitteredRoom(Rng& rng) const {
  if (config_.background_jitter_m <= 0.0) return room_;
  geometry::Room jittered = room_;
  // Walls stay put; only the furniture-like scatterers breathe.
  geometry::Room rebuilt;
  for (const auto& wall : jittered.walls()) rebuilt.AddWall(wall);
  for (const auto& s : jittered.scatterers()) {
    geometry::Scatterer moved = s;
    moved.position.x += rng.Gaussian(0.0, config_.background_jitter_m);
    moved.position.y += rng.Gaussian(0.0, config_.background_jitter_m);
    rebuilt.AddScatterer(moved);
  }
  return rebuilt;
}

wifi::CsiPacket ChannelSimulator::CapturePacket(
    const std::optional<propagation::HumanBody>& human, Rng& rng) {
  std::vector<propagation::HumanBody> humans;
  if (human.has_value()) humans.push_back(*human);
  return CapturePacket(humans, rng);
}

wifi::CsiPacket ChannelSimulator::CapturePacket(
    const std::vector<propagation::HumanBody>& humans, Rng& rng) {
  const geometry::Room snapshot = JitteredRoom(rng);
  const propagation::RayTracer tracer(snapshot, config_.friis, config_.trace);
  propagation::PathSet paths = tracer.Trace(tx_, rx_);

  // Background people wander and perturb the channel on every packet,
  // whether or not a monitored person is present.
  for (std::size_t w = 0; w < config_.walkers.size(); ++w) {
    const auto& walker = config_.walkers[w];
    auto& pos = walker_positions_[w];
    pos = walker.base + (pos - walker.base) * walker.pull;
    pos.x += rng.Gaussian(0.0, walker.step_sigma_m);
    pos.y += rng.Gaussian(0.0, walker.step_sigma_m);
    propagation::HumanBody body;
    body.position = pos;
    body.cross_section_m2 = walker.cross_section_m2;
    body.height_m = walker.height_m;
    body.min_shadow_amplitude = walker.min_shadow_amplitude;
    paths = propagation::ApplyHuman(paths, tx_, rx_, body,
                                    band_.CenterWavelength(),
                                    config_.heights);
  }

  for (const auto& monitored : humans) {
    propagation::HumanBody body = monitored;
    if (config_.human_sway_sigma_m > 0.0) {
      body.position.x += rng.Gaussian(0.0, config_.human_sway_sigma_m);
      body.position.y += rng.Gaussian(0.0, config_.human_sway_sigma_m);
    }
    if (body.breathing_amplitude_m > 0.0 && body.breathing_rate_hz > 0.0) {
      // Chest displacement toward the receiver, periodic in wall-clock time.
      const Vec2 toward_rx = (rx_ - body.position).Normalized();
      const double displacement =
          body.breathing_amplitude_m *
          std::sin(2.0 * kPi * body.breathing_rate_hz * clock_s_);
      body.position = body.position + toward_rx * displacement;
    }
    paths = propagation::ApplyHuman(paths, tx_, rx_, body,
                                    band_.CenterWavelength(),
                                    config_.heights);
  }

  // Interior partitions attenuate every leg that crosses them (no-op for
  // plain rectangular rooms, where no in-room leg crosses the shell).
  paths = propagation::ApplyWallTransmission(paths, snapshot);

  linalg::CMatrix cfr = wifi::SynthesizeCfr(paths, band_, array_);
  wifi::ApplyNoise(cfr, offsets_hz_, config_.noise, rng);

  // Slow gain drift (OU process advanced once per packet).
  if (config_.slow_gain_drift_db > 0.0 && config_.slow_gain_drift_tau_s > 0.0) {
    const double dt = 1.0 / config_.packet_rate_hz;
    const double rho = std::exp(-dt / config_.slow_gain_drift_tau_s);
    gain_drift_state_db_ =
        rho * gain_drift_state_db_ +
        rng.Gaussian(0.0, config_.slow_gain_drift_db *
                              std::sqrt(1.0 - rho * rho));
    cfr *= Complex(std::pow(10.0, gain_drift_state_db_ / 20.0), 0.0);
  }

  // Co-channel interference burst state machine.
  if (config_.interference_entry_prob > 0.0) {
    if (!interference_active_) {
      if (rng.NextDouble() < config_.interference_entry_prob) {
        interference_active_ = true;
        const int max_start = static_cast<int>(band_.NumSubcarriers()) -
                              static_cast<int>(config_.interference_width_subcarriers);
        interference_start_k_ = static_cast<std::size_t>(
            rng.UniformInt(0, std::max(0, max_start)));
      }
    } else if (rng.NextDouble() < config_.interference_exit_prob) {
      interference_active_ = false;
    }
    if (interference_active_) {
      double mean_power = 0.0;
      for (std::size_t m = 0; m < cfr.rows(); ++m) {
        for (std::size_t k = 0; k < cfr.cols(); ++k) {
          mean_power += std::norm(cfr.At(m, k));
        }
      }
      mean_power /= static_cast<double>(cfr.rows() * cfr.cols());
      const double sigma = std::sqrt(
          mean_power * std::pow(10.0, config_.interference_power_db / 10.0) /
          2.0);
      const std::size_t end_k =
          std::min(interference_start_k_ + config_.interference_width_subcarriers,
                   cfr.cols());
      for (std::size_t k = interference_start_k_; k < end_k; ++k) {
        for (std::size_t m = 0; m < cfr.rows(); ++m) {
          cfr.At(m, k) += Complex(rng.Gaussian(0.0, sigma),
                                  rng.Gaussian(0.0, sigma));
        }
      }
    }
  }

  const double timestamp = clock_s_;
  clock_s_ += 1.0 / config_.packet_rate_hz;
  if (!injector_) {
    return emulator_.Report(cfr, timestamp, next_sequence_++);
  }
  // Fault path: the dead chain is silenced inside the report (the AGC
  // retrains on the surviving rows), then in-frame corruption and AGC jumps
  // are applied from the injector's private RNG stream. Stream-level faults
  // (drop/duplicate/reorder) are applied per session, below.
  wifi::CsiPacket packet = emulator_.Report(cfr, timestamp, next_sequence_++,
                                            injector_->DeadAntennaMask());
  injector_->CorruptPacket(packet);
  return packet;
}

std::vector<wifi::CsiPacket> ChannelSimulator::CaptureSession(
    std::size_t count, const std::optional<propagation::HumanBody>& human,
    Rng& rng) {
  std::vector<propagation::HumanBody> humans;
  if (human.has_value()) humans.push_back(*human);
  return CaptureSessionMulti(count, humans, rng);
}

std::vector<wifi::CsiPacket> ChannelSimulator::CaptureSessionMulti(
    std::size_t count, const std::vector<propagation::HumanBody>& humans,
    Rng& rng) {
  std::vector<wifi::CsiPacket> packets;
  packets.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    packets.push_back(CapturePacket(humans, rng));
  }
  if (injector_) injector_->ApplyStreamFaults(packets);
  return packets;
}

std::vector<wifi::CsiPacket> ChannelSimulator::CaptureWalk(
    std::size_t count, propagation::HumanBody body, Vec2 from, Vec2 to,
    double speed_mps, Rng& rng) {
  MULINK_REQUIRE(speed_mps > 0.0, "CaptureWalk: speed must be > 0");
  std::vector<wifi::CsiPacket> packets;
  packets.reserve(count);
  const double step_s = 1.0 / config_.packet_rate_hz;
  const Vec2 dir = (to - from).Normalized();
  const double total = geometry::Distance(from, to);
  double travelled = 0.0;
  for (std::size_t i = 0; i < count; ++i) {
    body.position = from + dir * std::min(travelled, total);
    packets.push_back(CapturePacket(body, rng));
    travelled += speed_mps * step_s;
  }
  if (injector_) injector_->ApplyStreamFaults(packets);
  return packets;
}

propagation::PathSet ChannelSimulator::StaticPaths() const {
  const propagation::RayTracer tracer(room_, config_.friis, config_.trace);
  return tracer.Trace(tx_, rx_);
}

}  // namespace mulink::nic
