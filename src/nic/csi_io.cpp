#include "nic/csi_io.h"

#include <cmath>
#include <cstdint>
#include <fstream>

#include "common/assert.h"
#include "common/error.h"

namespace mulink::nic {

namespace {

constexpr char kMagic[4] = {'M', 'L', 'N', 'K'};
constexpr std::uint32_t kVersion = 1;

template <typename T>
void WriteValue(std::ofstream& out, T value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(value));
}

template <typename T>
T ReadValue(std::ifstream& in) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof(value));
  MULINK_REQUIRE(static_cast<bool>(in), "CSI session file truncated");
  return value;
}

}  // namespace

void WriteCsiSession(const std::string& path,
                     const std::vector<wifi::CsiPacket>& session) {
  MULINK_REQUIRE(!session.empty(), "WriteCsiSession: empty session");
  const std::uint32_t antennas =
      static_cast<std::uint32_t>(session[0].NumAntennas());
  const std::uint32_t subcarriers =
      static_cast<std::uint32_t>(session[0].NumSubcarriers());
  for (const auto& packet : session) {
    MULINK_REQUIRE(packet.NumAntennas() == antennas &&
                       packet.NumSubcarriers() == subcarriers,
                   "WriteCsiSession: inconsistent packet shapes");
  }

  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    throw Error("WriteCsiSession: cannot open " + path + " for writing");
  }
  out.write(kMagic, sizeof(kMagic));
  WriteValue(out, kVersion);
  WriteValue(out, static_cast<std::uint32_t>(session.size()));
  WriteValue(out, antennas);
  WriteValue(out, subcarriers);
  for (const auto& packet : session) {
    WriteValue(out, packet.timestamp_s);
    WriteValue(out, packet.rssi_db);
    WriteValue(out, packet.sequence);
    for (std::uint32_t m = 0; m < antennas; ++m) {
      for (std::uint32_t k = 0; k < subcarriers; ++k) {
        WriteValue(out, packet.csi.At(m, k).real());
        WriteValue(out, packet.csi.At(m, k).imag());
      }
    }
  }
  if (!out) {
    throw Error("WriteCsiSession: write failed for " + path);
  }
}

std::vector<wifi::CsiPacket> ReadCsiSession(const std::string& path,
                                            CsiReadMode mode) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw Error("ReadCsiSession: cannot open " + path);
  }
  char magic[4];
  in.read(magic, sizeof(magic));
  MULINK_REQUIRE(in && magic[0] == 'M' && magic[1] == 'L' && magic[2] == 'N' &&
                     magic[3] == 'K',
                 "ReadCsiSession: bad magic (not a mulink CSI session)");
  const auto version = ReadValue<std::uint32_t>(in);
  MULINK_REQUIRE(version == kVersion,
                 "ReadCsiSession: unsupported format version");
  const auto packets = ReadValue<std::uint32_t>(in);
  const auto antennas = ReadValue<std::uint32_t>(in);
  const auto subcarriers = ReadValue<std::uint32_t>(in);
  MULINK_REQUIRE(packets > 0 && antennas > 0 && subcarriers > 0,
                 "ReadCsiSession: empty or malformed header");
  // Plausibility caps: no NIC reports anywhere near these, and they bound
  // the allocation a corrupted header can demand.
  MULINK_REQUIRE(antennas <= 64 && subcarriers <= 16384,
                 "ReadCsiSession: implausible antenna/subcarrier count");

  // The header's packet count must match the bytes actually present —
  // catches both truncated files and trailing garbage before any packet is
  // parsed (and before the count drives an allocation).
  const std::streamoff payload_start = in.tellg();
  in.seekg(0, std::ios::end);
  const std::streamoff file_size = in.tellg();
  in.seekg(payload_start);
  const std::uint64_t packet_bytes =
      3 * 8 + static_cast<std::uint64_t>(antennas) * subcarriers * 16;
  const std::uint64_t expected =
      static_cast<std::uint64_t>(payload_start) +
      static_cast<std::uint64_t>(packets) * packet_bytes;
  MULINK_REQUIRE(static_cast<std::uint64_t>(file_size) == expected,
                 "ReadCsiSession: file size does not match the header's "
                 "packet count (truncated or trailing bytes)");

  std::vector<wifi::CsiPacket> session;
  session.reserve(packets);
  for (std::uint32_t p = 0; p < packets; ++p) {
    wifi::CsiPacket packet;
    packet.timestamp_s = ReadValue<double>(in);
    packet.rssi_db = ReadValue<double>(in);
    packet.sequence = ReadValue<std::uint64_t>(in);
    MULINK_REQUIRE(mode == CsiReadMode::kTolerant ||
                       (std::isfinite(packet.timestamp_s) &&
                        std::isfinite(packet.rssi_db)),
                   "ReadCsiSession: non-finite packet metadata");
    packet.csi = linalg::CMatrix(antennas, subcarriers);
    for (std::uint32_t m = 0; m < antennas; ++m) {
      for (std::uint32_t k = 0; k < subcarriers; ++k) {
        const double re = ReadValue<double>(in);
        const double im = ReadValue<double>(in);
        MULINK_REQUIRE(mode == CsiReadMode::kTolerant ||
                           (std::isfinite(re) && std::isfinite(im)),
                       "ReadCsiSession: non-finite CSI value");
        packet.csi.At(m, k) = Complex(re, im);
      }
    }
    session.push_back(std::move(packet));
  }
  return session;
}

void ExportCsiCsv(const std::string& path,
                  const std::vector<wifi::CsiPacket>& session) {
  MULINK_REQUIRE(!session.empty(), "ExportCsiCsv: empty session");
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    throw Error("ExportCsiCsv: cannot open " + path + " for writing");
  }
  out << "sequence,timestamp_s,antenna";
  for (std::size_t k = 0; k < session[0].NumSubcarriers(); ++k) {
    out << ",amp_db_" << k + 1;
  }
  out << "\n";
  for (const auto& packet : session) {
    for (std::size_t m = 0; m < packet.NumAntennas(); ++m) {
      out << packet.sequence << "," << packet.timestamp_s << "," << m;
      for (std::size_t k = 0; k < packet.NumSubcarriers(); ++k) {
        out << "," << packet.SubcarrierPowerDb(m, k);
      }
      out << "\n";
    }
  }
  if (!out) {
    throw Error("ExportCsiCsv: write failed for " + path);
  }
}

}  // namespace mulink::nic
