// End-to-end capture chain: room geometry -> ray tracing -> (optional human)
// -> CFR synthesis -> receiver impairments -> NIC quantization -> CsiPacket.
//
// This is the stand-in for the paper's physical testbed (Tenda AP pinged at
// 50 packets/s by an Intel 5300 mini PC). One ChannelSimulator models one
// TX-RX link in one room; CaptureSession produces the 5000-packet bursts the
// measurement campaign uses.
#pragma once

#include <optional>
#include <vector>

#include "common/rng.h"
#include "geometry/room.h"
#include "nic/fault_injection.h"
#include "nic/intel5300.h"
#include "propagation/human.h"
#include "propagation/ray_tracer.h"
#include "propagation/transmission.h"
#include "wifi/array.h"
#include "wifi/band.h"
#include "wifi/cfr.h"
#include "wifi/csi.h"
#include "wifi/noise.h"

namespace mulink::nic {

// A background person (the paper allowed up to 5 students to work at desks
// and occasionally walk around, staying ~5 m from the link). Modelled as an
// Ornstein-Uhlenbeck wander around a base position: scatters and occasionally
// shadows far paths, producing the structured environmental dynamics the
// weighting schemes must reject.
struct BackgroundWalker {
  geometry::Vec2 base;
  // Per-packet random step (meters); ~2 cm matches fidgeting/slow walking
  // sampled at 50 packets per second.
  double step_sigma_m = 0.02;
  // Pull-back factor toward the base per packet (keeps the wander bounded).
  double pull = 0.97;
  // Smaller than a standing person: seated, partially occluded by a desk.
  double cross_section_m2 = 0.3;
  // Seated head height; with the vertical-clearance shadow model a seated
  // person rarely blocks paths to an elevated AP.
  double height_m = 1.25;
  // Partial blocker (desk and chair occlude the torso).
  double min_shadow_amplitude = 0.6;
};

struct ChannelSimConfig {
  propagation::FriisModel friis;
  propagation::TraceOptions trace;
  wifi::NoiseModel noise;
  Intel5300Config nic;

  // Packet rate of the ping stream (paper: 50 packets per second).
  double packet_rate_hz = 50.0;

  // Standing humans are never perfectly still: per-packet Gaussian jitter of
  // the body position (meters). Drives the temporal instability of the
  // multipath factor seen in Fig. 4 and the AoA averaging gain of Fig. 10.
  double human_sway_sigma_m = 0.004;

  // Background dynamics: Gaussian per-packet jitter of scatterer positions
  // (meters) — thermal/HVAC-scale environment breathing.
  double background_jitter_m = 0.004;

  // Background people moving about the room (away from the link).
  std::vector<BackgroundWalker> walkers;

  // TX (AP) and RX mounting heights; the shadowing model fades out where a
  // path runs above head height.
  propagation::LinkHeights heights;

  // Slow receiver/transmitter power drift (AGC + transmit power control
  // hunting): an Ornstein-Uhlenbeck process in dB with this stationary
  // standard deviation and correlation time. Slow relative to a monitoring
  // window, so window averaging cannot remove it — a key stressor for
  // amplitude-based detection statistics (the scale-invariant pseudospectrum
  // is immune).
  double slow_gain_drift_db = 0.1;
  double slow_gain_drift_tau_s = 3.0;

  // Co-channel interference bursts (Bluetooth FHSS / microwave ovens share
  // 2.4 GHz channel 11): a two-state Markov process. While a burst is
  // active, a contiguous clump of subcarriers receives strong additive
  // noise. Per-packet detection statistics eat these raw; window-averaged
  // statistics suppress them by the window length.
  double interference_entry_prob = 0.05;   // per packet
  double interference_exit_prob = 0.45;    // per packet while active
  std::size_t interference_width_subcarriers = 4;
  double interference_power_db = 9.0;      // relative to mean subcarrier power

  // NIC/firmware fault processes (drop, reorder, corruption, dead chain,
  // AGC jumps). Disabled by default; when enabled the injector draws from
  // its own pre-forked RNG stream, so the channel realization is unchanged
  // and the parallel campaign runner stays bit-identical.
  FaultInjectionConfig faults;
};

class ChannelSimulator {
 public:
  ChannelSimulator(geometry::Room room, geometry::Vec2 tx, geometry::Vec2 rx,
                   wifi::UniformLinearArray array, wifi::BandPlan band,
                   ChannelSimConfig config = {});

  // One CSI packet; `human` empty means nobody inside the monitored area.
  wifi::CsiPacket CapturePacket(
      const std::optional<propagation::HumanBody>& human, Rng& rng);

  // Multi-person variant (crowd-counting extension, paper ref [29]): every
  // body is applied to the channel with its own sway realization.
  wifi::CsiPacket CapturePacket(const std::vector<propagation::HumanBody>& humans,
                                Rng& rng);

  // Session of `count` packets with several monitored people present.
  std::vector<wifi::CsiPacket> CaptureSessionMulti(
      std::size_t count, const std::vector<propagation::HumanBody>& humans,
      Rng& rng);

  // A burst of `count` packets at the configured rate. Human sway and
  // background jitter are re-drawn per packet.
  std::vector<wifi::CsiPacket> CaptureSession(
      std::size_t count, const std::optional<propagation::HumanBody>& human,
      Rng& rng);

  // Burst while the human walks along a line from `from` to `to` at
  // `speed_mps`; returns one packet per time step.
  std::vector<wifi::CsiPacket> CaptureWalk(std::size_t count,
                                           propagation::HumanBody body,
                                           geometry::Vec2 from,
                                           geometry::Vec2 to, double speed_mps,
                                           Rng& rng);

  // Noiseless static paths of the link (for analysis / ground truth).
  propagation::PathSet StaticPaths() const;

  const geometry::Room& room() const { return room_; }
  geometry::Vec2 tx() const { return tx_; }
  geometry::Vec2 rx() const { return rx_; }
  const wifi::BandPlan& band() const { return band_; }
  const wifi::UniformLinearArray& array() const { return array_; }
  const ChannelSimConfig& config() const { return config_; }

 private:
  geometry::Room JitteredRoom(Rng& rng) const;

  geometry::Room room_;
  geometry::Vec2 tx_;
  geometry::Vec2 rx_;
  wifi::UniformLinearArray array_;
  wifi::BandPlan band_;
  ChannelSimConfig config_;
  Intel5300Emulator emulator_;
  std::optional<FaultInjector> injector_;
  std::vector<double> offsets_hz_;
  std::vector<geometry::Vec2> walker_positions_;
  double gain_drift_state_db_ = 0.0;
  bool interference_active_ = false;
  std::size_t interference_start_k_ = 0;
  std::uint64_t next_sequence_ = 0;
  double clock_s_ = 0.0;
};

}  // namespace mulink::nic
