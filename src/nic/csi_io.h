// CSI session serialization.
//
// Lets captured sessions (simulated here, or converted from real Intel 5300
// CSI Tool traces) be stored, replayed, and exchanged: a compact binary
// format for lossless round-trips plus a CSV exporter for plotting.
#pragma once

#include <string>
#include <vector>

#include "wifi/csi.h"

namespace mulink::nic {

// Binary format (little-endian host layout):
//   magic "MLNK", u32 version, u32 packets, u32 antennas, u32 subcarriers,
//   then per packet: f64 timestamp, f64 rssi_db, u64 sequence,
//                    antennas*subcarriers * (f64 re, f64 im).
// All packets in a session must share one (antennas, subcarriers) shape.
//
// Throws mulink::Error on IO failure and PreconditionError on malformed
// input (bad magic/version, truncated file, inconsistent shapes).
void WriteCsiSession(const std::string& path,
                     const std::vector<wifi::CsiPacket>& session);

std::vector<wifi::CsiPacket> ReadCsiSession(const std::string& path);

// CSV export for plotting: one row per (packet, antenna) with columns
//   sequence, timestamp_s, antenna, amp_db_1..amp_db_K
// (per-subcarrier power in dB).
void ExportCsiCsv(const std::string& path,
                  const std::vector<wifi::CsiPacket>& session);

}  // namespace mulink::nic
