// CSI session serialization.
//
// Lets captured sessions (simulated here, or converted from real Intel 5300
// CSI Tool traces) be stored, replayed, and exchanged: a compact binary
// format for lossless round-trips plus a CSV exporter for plotting.
#pragma once

#include <string>
#include <vector>

#include "wifi/csi.h"

namespace mulink::nic {

// Binary format (little-endian host layout):
//   magic "MLNK", u32 version, u32 packets, u32 antennas, u32 subcarriers,
//   then per packet: f64 timestamp, f64 rssi_db, u64 sequence,
//                    antennas*subcarriers * (f64 re, f64 im).
// All packets in a session must share one (antennas, subcarriers) shape.
//
// Throws mulink::Error on IO failure and PreconditionError on malformed
// input: bad magic/version, inconsistent shapes, implausible header
// dimensions, a file size that disagrees with the header's packet count
// (truncation or trailing bytes), or non-finite values in the payload.
// A session that loads is safe to feed straight into the pipeline.
void WriteCsiSession(const std::string& path,
                     const std::vector<wifi::CsiPacket>& session);

// kStrict rejects non-finite payload values; kTolerant admits them so a
// FrameGuard-fronted pipeline can see (and quarantine) the corrupt frames a
// real driver emits. Everything structural — magic, version, shape,
// size-vs-header — is enforced in both modes.
enum class CsiReadMode { kStrict, kTolerant };

std::vector<wifi::CsiPacket> ReadCsiSession(
    const std::string& path, CsiReadMode mode = CsiReadMode::kStrict);

// CSV export for plotting: one row per (packet, antenna) with columns
//   sequence, timestamp_s, antenna, amp_db_1..amp_db_K
// (per-subcarrier power in dB).
void ExportCsiCsv(const std::string& path,
                  const std::vector<wifi::CsiPacket>& session);

}  // namespace mulink::nic
