// Configurable NIC/firmware fault processes for the capture chain.
//
// The emulated Intel 5300 report path is too clean: real CSI Tool traces
// drop frames under contention, reorder them in the kernel ring, hand the
// pipeline garbage subcarriers after a firmware desync, lose whole RX
// chains to a loose pigtail, and jump the AGC gain when a neighboring
// transmitter keys up. A FaultInjector reproduces those processes on top of
// an otherwise-untouched capture so the frame_guard / degraded-mode pipeline
// can be exercised and regression-tested.
//
// Determinism: the injector owns a dedicated Rng seeded from its config —
// pre-forked, never shared with the channel's RNG — so (a) enabling faults
// does not perturb the channel sample stream and (b) the parallel campaign
// runner stays bit-identical across thread counts.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/rng.h"
#include "wifi/csi.h"

namespace mulink::nic {

struct FaultInjectionConfig {
  bool enabled = false;
  // Seed of the injector's private RNG stream.
  std::uint64_t seed = 1;

  // Stream-level processes (applied per captured session, per frame):
  double drop_prob = 0.0;       // frame lost (sequence gap downstream)
  double duplicate_prob = 0.0;  // frame delivered twice
  double reorder_prob = 0.0;    // frame swapped with its successor

  // In-frame corruption: a clump of subcarriers on one RX chain overwritten
  // with garbage (NaN with corrupt_nan_prob, else a huge saturated value).
  double corrupt_prob = 0.0;
  std::size_t corrupt_width = 3;
  double corrupt_nan_prob = 0.5;

  // Dead RX chain: antenna index (negative = none) silenced from the given
  // packet index onward.
  int dead_antenna = -1;
  std::size_t dead_from_packet = 0;

  // AGC jump: with agc_jump_prob per frame the receive gain steps by
  // agc_jump_db for agc_jump_packets frames (RSSI and CSI scale together,
  // the commodity-NIC signature the guard's RSSI outlier check keys on).
  double agc_jump_prob = 0.0;
  double agc_jump_db = 12.0;
  std::size_t agc_jump_packets = 8;

  // Long-horizon drift processes (the adaptive-calibration campaign's fault
  // vocabulary). All deterministic in the packet index / injector RNG:
  //
  // Slow multiplicative gain ramp: every frame scales by an accumulated
  // gain of drift_ramp_db_per_1k dB per 1000 packets (temperature drift of
  // the RF front end), clamped at drift_ramp_max_db.
  double drift_ramp_db_per_1k = 0.0;
  double drift_ramp_max_db = 12.0;

  // Furniture move: at each multiple of furniture_step_packets a persistent
  // per-cell field 1 + eps is drawn (eps complex Gaussian, RMS magnitude
  // change furniture_step_sigma_db — a moved scatterer adds a small term to
  // each cell's multipath sum) and applied to every subsequent frame — a
  // step change in the static multipath profile, not a transient. 0
  // disables.
  std::size_t furniture_step_packets = 0;
  double furniture_step_sigma_db = 1.5;

  // Scheduled AGC jumps: every agc_schedule_every_packets the AGC burst
  // machinery above fires regardless of agc_jump_prob (same agc_jump_db /
  // agc_jump_packets). 0 disables.
  std::size_t agc_schedule_every_packets = 0;
};

class FaultInjector {
 public:
  explicit FaultInjector(FaultInjectionConfig config);

  // Dead-chain bitmask for the *next* frame (consumed by the emulator's
  // report path before quantization so the AGC rescales to the live rows).
  std::uint32_t DeadAntennaMask() const;

  // In-frame faults (corruption, AGC jump) on one reported packet; advances
  // the injector's packet index.
  void CorruptPacket(wifi::CsiPacket& packet);

  // Stream-level faults (drop / duplicate / reorder) over a captured
  // session, in capture order.
  void ApplyStreamFaults(std::vector<wifi::CsiPacket>& session);

  const FaultInjectionConfig& config() const { return config_; }
  std::size_t packets_seen() const { return packet_index_; }

 private:
  FaultInjectionConfig config_;
  Rng rng_;
  // Drift processes draw from their own stream so enabling a furniture step
  // never perturbs the corrupt / AGC draw sequence of the main stream.
  Rng drift_rng_;
  std::size_t packet_index_ = 0;
  std::size_t agc_jump_remaining_ = 0;
  double agc_gain_linear_ = 1.0;
  // Persistent per-cell complex gain field of the last furniture step
  // (empty until the first step fires; sized ants*scs on first use).
  std::vector<Complex> furniture_field_;
  std::size_t furniture_steps_seen_ = 0;
};

}  // namespace mulink::nic
