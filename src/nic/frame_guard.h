// Fault-tolerant CSI ingest: per-link frame validation with a typed fault
// taxonomy.
//
// Real commodity-NIC traces are riddled with firmware glitches — dropped,
// reordered and duplicated frames, garbage subcarriers (NaN/Inf after the
// driver's fixed-point unpacking), silently dead RX chains, and AGC-induced
// RSSI jumps. The detection pipeline downstream (Detector, SensingEngine)
// assumes clean input: one NaN subcarrier poisons the window score, the
// Eq. 15 weights, and the MUSIC pseudospectrum at once.
//
// A FrameGuard sits between the NIC and the ring buffer. Every CsiPacket is
// classified into one of three verdicts:
//   * accept     — clean frame, enters the window ring untouched.
//   * repair     — usable but flagged (dead RX chain, RSSI outlier): the
//                  frame enters the ring and downstream consumers degrade
//                  (e.g. fall back to subcarrier-only weighting, which does
//                  not need the full ULA).
//   * quarantine — unusable (non-finite CSI, zero energy, duplicate or
//                  late sequence, wrong shape): the frame must not enter
//                  the ring. Sequence gaps created this way are tracked.
// Per-link fault counters are exposed through LinkHealth, which the engine
// augments with its degradation state and surfaces through the CLI and
// examples.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "wifi/csi.h"

namespace mulink::nic {

// Fault taxonomy (bitmask: one frame can carry several faults at once).
enum class FrameFault : std::uint32_t {
  kNone = 0,
  kNonFinite = 1u << 0,      // NaN/Inf in the CSI matrix or metadata
  kZeroEnergy = 1u << 1,     // whole frame carries no power
  kDeadAntenna = 1u << 2,    // one RX chain silent while the others are live
  kDuplicateSequence = 1u << 3,
  kReorderedSequence = 1u << 4,  // arrived after a newer frame
  kSequenceGap = 1u << 5,        // one or more frames lost before this one
  kRssiOutlier = 1u << 6,        // AGC jump: RSSI far off its running mean
  kShapeMismatch = 1u << 7,      // antenna/subcarrier count changed mid-link
};

inline constexpr std::size_t kNumFrameFaults = 8;

constexpr std::uint32_t FaultBit(FrameFault fault) {
  return static_cast<std::uint32_t>(fault);
}

const char* ToString(FrameFault fault);

enum class FrameVerdict { kAccept, kRepair, kQuarantine };

const char* ToString(FrameVerdict verdict);

struct FrameGuardConfig {
  // Frame shape every packet must match; 0 locks onto the first frame seen.
  std::size_t expected_antennas = 0;
  std::size_t expected_subcarriers = 0;

  // An antenna whose per-frame energy stays below dead_antenna_rel_power x
  // the strongest chain's energy for dead_antenna_packets consecutive
  // frames is declared dead; the same count of live frames revives it.
  double dead_antenna_rel_power = 1e-6;
  std::size_t dead_antenna_packets = 10;

  // RSSI outlier (AGC jump): |rssi - EWMA mean| > rssi_outlier_sigma x the
  // EWMA standard deviation, evaluated after rssi_warmup_packets frames.
  // A flagged frame's residual is folded into the EWMA clamped to
  // rssi_outlier_clamp_sigma x sigma (a Huber-style robust update): at full
  // weight one 12 dB excursion inflates the variance enough that the rest
  // of an AGC burst passes under the gate, so a multi-frame burst would be
  // flagged exactly once — too few flagged frames to ever drive the
  // calibration ladder's AGC fast re-baseline. The clamp keeps a short
  // burst out-of-family for its full length while a persistent gain step
  // still converges (each clamped update widens sigma ~alpha x clamp^2, so
  // the gate reaches the step within a few tens of frames).
  // The absolute floor under the sigma gate: deviations below
  // rssi_outlier_min_db never flag, whatever the EWMA sigma says. Fading
  // RSSI is heavy-tailed and temporally correlated — a deep-fade excursion
  // of a few dB can run for several frames and would read as a burst of
  // outliers against a tight sigma estimate — while genuine AGC steps come
  // in half-dozen-dB quanta. The floor keeps the flag on gain steps and
  // off channel dynamics.
  double rssi_outlier_sigma = 6.0;
  double rssi_outlier_min_db = 6.0;
  double rssi_outlier_clamp_sigma = 1.0;
  double rssi_ewma_alpha = 0.05;
  std::size_t rssi_warmup_packets = 20;

  // A sequence gap larger than this asks downstream consumers to flush
  // their window ring: the buffered context predates the outage.
  std::size_t max_gap_packets = 50;
};

// Classification of one frame.
struct FrameReport {
  FrameVerdict verdict = FrameVerdict::kAccept;
  std::uint32_t faults = 0;  // FrameFault bitmask
  // Frames lost between the previous accepted frame and this one.
  std::size_t gap = 0;
  // The gap exceeded max_gap_packets: buffered windows are stale.
  bool resync = false;
  // RX chain newly confirmed dead by this frame (-1 otherwise).
  int antenna_died = -1;

  bool Has(FrameFault fault) const { return (faults & FaultBit(fault)) != 0; }
};

// Adaptive-calibration ladder state. The state machine itself lives in
// core/calibration (which depends on this layer, not the reverse); the enum
// is declared here so LinkHealth snapshots and the obs exporters can carry
// and name the state without a core dependency.
enum class CalibrationLadder : std::uint8_t {
  kHealthy = 0,         // profile matches quiet air; posterior learns slowly
  kDriftSuspected = 1,  // quiet-score EWMA persistently near the threshold
  kRecalibrating = 2,   // collecting quiet evidence for an in-place swap
  kDegraded = 3,        // repeated recalibrations failed; retrying on backoff
  kFrozen = 4,          // gave up; only an explicit Reset re-arms the ladder
};

const char* ToString(CalibrationLadder state);

// Per-link ingest health. The guard fills the counters; SensingEngine /
// StreamingDetector fill the degradation fields before handing the report
// to callers.
struct LinkHealth {
  std::uint64_t received = 0;
  std::uint64_t accepted = 0;
  std::uint64_t repaired = 0;
  std::uint64_t quarantined = 0;
  // Frames lost to sequence gaps (never seen at all).
  std::uint64_t missing = 0;
  // Per-fault occurrence counts, indexed by the bit position of FrameFault.
  std::uint64_t fault_counts[kNumFrameFaults] = {};
  // Currently-dead RX chains (bit m = antenna m).
  std::uint32_t dead_antenna_mask = 0;

  // Filled by the sensing layer:
  bool degraded = false;         // last decision used the fallback statistic
  std::uint64_t degraded_decisions = 0;
  bool profile_drift = false;    // watchdog: s(0) no longer matches empty air
  double empty_score_ewma = 0.0; // watchdog state (quarantine-filtered)

  // Filled by the adaptive-calibration ladder (core/calibration); all at
  // their zero values when adaptive calibration is off.
  CalibrationLadder calibration_state = CalibrationLadder::kHealthy;
  std::uint64_t quiet_windows = 0;   // windows accepted as quiet evidence
  std::uint64_t profile_swaps = 0;   // in-place recalibrations applied
  double adaptive_threshold = 0.0;   // active threshold (0 before any swap)

  std::uint64_t FaultCount(FrameFault fault) const;
};

enum class LinkStatus { kHealthy, kDegraded, kCritical };

const char* ToString(LinkStatus status);

// Summary verdict over a LinkHealth snapshot: critical when most frames are
// unusable or every chain is dead, degraded when a chain died, the profile
// drifted, or fallback scoring is active.
LinkStatus Status(const LinkHealth& health);

class FrameGuard {
 public:
  explicit FrameGuard(FrameGuardConfig config = {});

  // Classify one frame and update the health counters. Does not modify the
  // frame; callers act on the verdict (quarantined frames must not reach
  // the window ring).
  FrameReport Inspect(const wifi::CsiPacket& packet);

  const LinkHealth& health() const { return health_; }
  std::uint32_t dead_antenna_mask() const { return health_.dead_antenna_mask; }
  const FrameGuardConfig& config() const { return config_; }

  // Forget sequence/RSSI/dead-chain state and zero the counters (matches a
  // link Reset; the locked frame shape is kept).
  void Reset();

 private:
  FrameGuardConfig config_;
  LinkHealth health_;

  std::size_t locked_antennas_ = 0;
  std::size_t locked_subcarriers_ = 0;

  bool have_sequence_ = false;
  std::uint64_t last_sequence_ = 0;

  double rssi_mean_ = 0.0;
  double rssi_var_ = 0.0;
  std::uint64_t rssi_seen_ = 0;

  std::vector<std::uint32_t> dead_streak_;
  std::vector<std::uint32_t> live_streak_;
};

}  // namespace mulink::nic
