#include "nic/fault_injection.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "common/assert.h"

namespace mulink::nic {

FaultInjector::FaultInjector(FaultInjectionConfig config)
    : config_(config), rng_(config.seed, /*stream=*/0x5eed5) {
  MULINK_REQUIRE(config_.drop_prob >= 0.0 && config_.drop_prob < 1.0,
                 "FaultInjector: drop_prob must be in [0, 1)");
  MULINK_REQUIRE(config_.corrupt_width >= 1,
                 "FaultInjector: corrupt_width must be >= 1");
}

std::uint32_t FaultInjector::DeadAntennaMask() const {
  if (config_.dead_antenna < 0 ||
      packet_index_ < config_.dead_from_packet) {
    return 0;
  }
  return 1u << static_cast<std::uint32_t>(config_.dead_antenna);
}

void FaultInjector::CorruptPacket(wifi::CsiPacket& packet) {
  const std::size_t ants = packet.NumAntennas();
  const std::size_t scs = packet.NumSubcarriers();

  // Garbage subcarriers: firmware desync writes junk into a clump of one
  // chain's report (NaN from the unpacker, or a saturated lattice value).
  if (config_.corrupt_prob > 0.0 &&
      rng_.NextDouble() < config_.corrupt_prob && ants > 0 && scs > 0) {
    const std::size_t m = static_cast<std::size_t>(
        rng_.UniformInt(0, static_cast<int>(ants) - 1));
    const std::size_t width = std::min(config_.corrupt_width, scs);
    const std::size_t start = static_cast<std::size_t>(
        rng_.UniformInt(0, static_cast<int>(scs - width)));
    for (std::size_t k = start; k < start + width; ++k) {
      if (rng_.NextDouble() < config_.corrupt_nan_prob) {
        packet.csi.At(m, k) =
            Complex(std::numeric_limits<double>::quiet_NaN(),
                    std::numeric_limits<double>::quiet_NaN());
      } else {
        // Saturated garbage, orders of magnitude above any channel gain.
        packet.csi.At(m, k) = Complex(1e9, -1e9);
      }
    }
  }

  // AGC jump: the receive gain steps for a burst of frames; CSI amplitudes
  // and the RSSI indicator move together, like a real AGC retrain.
  if (config_.agc_jump_prob > 0.0) {
    if (agc_jump_remaining_ == 0 &&
        rng_.NextDouble() < config_.agc_jump_prob) {
      agc_jump_remaining_ = std::max<std::size_t>(1, config_.agc_jump_packets);
      agc_gain_linear_ = std::pow(10.0, config_.agc_jump_db / 20.0);
    }
    if (agc_jump_remaining_ > 0) {
      for (std::size_t m = 0; m < ants; ++m) {
        for (std::size_t k = 0; k < scs; ++k) {
          packet.csi.At(m, k) *= Complex(agc_gain_linear_, 0.0);
        }
      }
      packet.rssi_db += 20.0 * std::log10(agc_gain_linear_);
      --agc_jump_remaining_;
    }
  }

  ++packet_index_;
}

void FaultInjector::ApplyStreamFaults(std::vector<wifi::CsiPacket>& session) {
  if (config_.drop_prob <= 0.0 && config_.duplicate_prob <= 0.0 &&
      config_.reorder_prob <= 0.0) {
    return;
  }
  std::vector<wifi::CsiPacket> out;
  out.reserve(session.size() + session.size() / 8);
  for (auto& packet : session) {
    if (config_.drop_prob > 0.0 && rng_.NextDouble() < config_.drop_prob) {
      continue;  // lost in the air / kernel ring overrun
    }
    out.push_back(std::move(packet));
    if (config_.duplicate_prob > 0.0 &&
        rng_.NextDouble() < config_.duplicate_prob) {
      out.push_back(out.back());  // delivered twice
    }
  }
  // Reorder pass: adjacent swaps model frames overtaking each other in the
  // driver's report queue.
  if (config_.reorder_prob > 0.0 && out.size() >= 2) {
    for (std::size_t i = 0; i + 1 < out.size(); ++i) {
      if (rng_.NextDouble() < config_.reorder_prob) {
        std::swap(out[i], out[i + 1]);
        ++i;  // a swapped pair is not re-swapped
      }
    }
  }
  session = std::move(out);
}

}  // namespace mulink::nic
