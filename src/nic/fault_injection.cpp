#include "nic/fault_injection.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "common/assert.h"

namespace mulink::nic {

FaultInjector::FaultInjector(FaultInjectionConfig config)
    : config_(config),
      rng_(config.seed, /*stream=*/0x5eed5),
      drift_rng_(config.seed, /*stream=*/0xd21f7) {
  MULINK_REQUIRE(config_.drop_prob >= 0.0 && config_.drop_prob < 1.0,
                 "FaultInjector: drop_prob must be in [0, 1)");
  MULINK_REQUIRE(config_.corrupt_width >= 1,
                 "FaultInjector: corrupt_width must be >= 1");
  MULINK_REQUIRE(config_.drift_ramp_db_per_1k >= 0.0 &&
                     config_.drift_ramp_max_db >= 0.0,
                 "FaultInjector: drift ramp must be non-negative");
  MULINK_REQUIRE(config_.furniture_step_sigma_db >= 0.0,
                 "FaultInjector: furniture step sigma must be non-negative");
}

std::uint32_t FaultInjector::DeadAntennaMask() const {
  if (config_.dead_antenna < 0 ||
      packet_index_ < config_.dead_from_packet) {
    return 0;
  }
  return 1u << static_cast<std::uint32_t>(config_.dead_antenna);
}

void FaultInjector::CorruptPacket(wifi::CsiPacket& packet) {
  const std::size_t ants = packet.NumAntennas();
  const std::size_t scs = packet.NumSubcarriers();

  // Furniture move: a step change in the static multipath profile. At each
  // multiple of the step period a persistent per-cell field 1 + eps is
  // drawn, eps ~ CN(0, s^2) with s set so the per-cell RMS change is
  // sigma_db — a moved scatterer adds a small complex term to each cell's
  // multipath sum rather than scrambling its phase. Every subsequent frame
  // is multiplied by the field (steps compose — a second move perturbs the
  // already-moved room).
  if (config_.furniture_step_packets > 0 && ants > 0 && scs > 0) {
    if (packet_index_ > 0 &&
        packet_index_ % config_.furniture_step_packets == 0) {
      // mulink-lint: allow(alloc): sized once at the first step; reused after
      furniture_field_.resize(ants * scs);
      const double scale =
          std::pow(10.0, config_.furniture_step_sigma_db / 20.0) - 1.0;
      const double component_sigma = scale / std::sqrt(2.0);
      for (std::size_t i = 0; i < furniture_field_.size(); ++i) {
        const Complex step =
            Complex(1.0, 0.0) +
            Complex(drift_rng_.Gaussian(0.0, component_sigma),
                    drift_rng_.Gaussian(0.0, component_sigma));
        furniture_field_[i] =
            furniture_steps_seen_ == 0 ? step : furniture_field_[i] * step;
      }
      ++furniture_steps_seen_;
    }
    if (furniture_steps_seen_ > 0) {
      for (std::size_t m = 0; m < ants; ++m) {
        for (std::size_t k = 0; k < scs; ++k) {
          packet.csi.At(m, k) *= furniture_field_[m * scs + k];
        }
      }
    }
  }

  // Slow multiplicative gain ramp: front-end temperature drift. CSI and
  // RSSI move together, far below the guard's per-frame outlier radar.
  if (config_.drift_ramp_db_per_1k > 0.0) {
    const double ramp_db =
        std::min(config_.drift_ramp_db_per_1k *
                     static_cast<double>(packet_index_) / 1000.0,
                 config_.drift_ramp_max_db);
    if (ramp_db > 0.0) {
      const double gain = std::pow(10.0, ramp_db / 20.0);
      for (std::size_t m = 0; m < ants; ++m) {
        for (std::size_t k = 0; k < scs; ++k) {
          packet.csi.At(m, k) *= Complex(gain, 0.0);
        }
      }
      packet.rssi_db += ramp_db;
    }
  }

  // Garbage subcarriers: firmware desync writes junk into a clump of one
  // chain's report (NaN from the unpacker, or a saturated lattice value).
  if (config_.corrupt_prob > 0.0 &&
      rng_.NextDouble() < config_.corrupt_prob && ants > 0 && scs > 0) {
    const std::size_t m = static_cast<std::size_t>(
        rng_.UniformInt(0, static_cast<int>(ants) - 1));
    const std::size_t width = std::min(config_.corrupt_width, scs);
    const std::size_t start = static_cast<std::size_t>(
        rng_.UniformInt(0, static_cast<int>(scs - width)));
    for (std::size_t k = start; k < start + width; ++k) {
      if (rng_.NextDouble() < config_.corrupt_nan_prob) {
        packet.csi.At(m, k) =
            Complex(std::numeric_limits<double>::quiet_NaN(),
                    std::numeric_limits<double>::quiet_NaN());
      } else {
        // Saturated garbage, orders of magnitude above any channel gain.
        packet.csi.At(m, k) = Complex(1e9, -1e9);
      }
    }
  }

  // AGC jump: the receive gain steps for a burst of frames; CSI amplitudes
  // and the RSSI indicator move together, like a real AGC retrain. Bursts
  // trigger randomly (agc_jump_prob) or on the drift campaign's schedule.
  if (agc_jump_remaining_ == 0 && config_.agc_jump_prob > 0.0 &&
      rng_.NextDouble() < config_.agc_jump_prob) {
    agc_jump_remaining_ = std::max<std::size_t>(1, config_.agc_jump_packets);
    agc_gain_linear_ = std::pow(10.0, config_.agc_jump_db / 20.0);
  }
  if (agc_jump_remaining_ == 0 && config_.agc_schedule_every_packets > 0 &&
      packet_index_ > 0 &&
      packet_index_ % config_.agc_schedule_every_packets == 0) {
    agc_jump_remaining_ = std::max<std::size_t>(1, config_.agc_jump_packets);
    agc_gain_linear_ = std::pow(10.0, config_.agc_jump_db / 20.0);
  }
  if (agc_jump_remaining_ > 0) {
    for (std::size_t m = 0; m < ants; ++m) {
      for (std::size_t k = 0; k < scs; ++k) {
        packet.csi.At(m, k) *= Complex(agc_gain_linear_, 0.0);
      }
    }
    packet.rssi_db += 20.0 * std::log10(agc_gain_linear_);
    --agc_jump_remaining_;
  }

  ++packet_index_;
}

void FaultInjector::ApplyStreamFaults(std::vector<wifi::CsiPacket>& session) {
  if (config_.drop_prob <= 0.0 && config_.duplicate_prob <= 0.0 &&
      config_.reorder_prob <= 0.0) {
    return;
  }
  std::vector<wifi::CsiPacket> out;
  out.reserve(session.size() + session.size() / 8);
  for (auto& packet : session) {
    if (config_.drop_prob > 0.0 && rng_.NextDouble() < config_.drop_prob) {
      continue;  // lost in the air / kernel ring overrun
    }
    out.push_back(std::move(packet));
    if (config_.duplicate_prob > 0.0 &&
        rng_.NextDouble() < config_.duplicate_prob) {
      out.push_back(out.back());  // delivered twice
    }
  }
  // Reorder pass: adjacent swaps model frames overtaking each other in the
  // driver's report queue.
  if (config_.reorder_prob > 0.0 && out.size() >= 2) {
    for (std::size_t i = 0; i + 1 < out.size(); ++i) {
      if (rng_.NextDouble() < config_.reorder_prob) {
        std::swap(out[i], out[i + 1]);
        ++i;  // a swapped pair is not re-swapped
      }
    }
  }
  session = std::move(out);
}

}  // namespace mulink::nic
