// Emulation of the Intel 5300 NIC + Linux CSI Tool reporting path.
//
// The CSI Tool reports each H(f_k) as a complex number with 8-bit signed
// real/imag parts after AGC scaling. The emulator reproduces the two
// artifacts that matter to the paper's pipeline: (a) quantization noise on
// weak subcarriers and (b) the per-packet AGC scale that makes absolute
// amplitudes comparable only after normalization. The reported packet keeps
// physical scale (we divide the integer lattice back by the AGC gain) so the
// rest of the pipeline works in channel units, with quantization embedded.
#pragma once

#include "common/rng.h"
#include "linalg/cmatrix.h"
#include "wifi/csi.h"

namespace mulink::nic {

struct Intel5300Config {
  bool quantize = true;
  // Max magnitude the int8 lattice can represent; the CSI Tool's internal
  // scaling targets roughly this peak.
  double full_scale = 90.0;
};

class Intel5300Emulator {
 public:
  explicit Intel5300Emulator(Intel5300Config config = {});

  // Turn an impaired CFR into a reported CsiPacket (quantization applied).
  // `dead_antenna_mask` silences RX chains (bit m = antenna m) *before* the
  // AGC peak scan, the way a dead pigtail looks to the real hardware: the
  // gain retrains on the surviving rows and the dead row reports the noise
  // floor (exact zeros after quantization). A zero mask is the clean path.
  wifi::CsiPacket Report(const linalg::CMatrix& cfr, double timestamp_s,
                         std::uint64_t sequence,
                         std::uint32_t dead_antenna_mask = 0) const;

  const Intel5300Config& config() const { return config_; }

 private:
  Intel5300Config config_;
};

}  // namespace mulink::nic
