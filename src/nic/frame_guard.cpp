#include "nic/frame_guard.h"

#include <algorithm>
#include <array>
#include <cmath>

#include "common/assert.h"

namespace mulink::nic {

namespace {

std::size_t FaultIndex(FrameFault fault) {
  std::size_t index = 0;
  std::uint32_t bit = FaultBit(fault);
  while (bit > 1u) {
    bit >>= 1u;
    ++index;
  }
  return index;
}

}  // namespace

const char* ToString(FrameFault fault) {
  switch (fault) {
    case FrameFault::kNone:
      return "none";
    case FrameFault::kNonFinite:
      return "non-finite";
    case FrameFault::kZeroEnergy:
      return "zero-energy";
    case FrameFault::kDeadAntenna:
      return "dead-antenna";
    case FrameFault::kDuplicateSequence:
      return "duplicate-sequence";
    case FrameFault::kReorderedSequence:
      return "reordered-sequence";
    case FrameFault::kSequenceGap:
      return "sequence-gap";
    case FrameFault::kRssiOutlier:
      return "rssi-outlier";
    case FrameFault::kShapeMismatch:
      return "shape-mismatch";
  }
  return "unknown";
}

const char* ToString(FrameVerdict verdict) {
  switch (verdict) {
    case FrameVerdict::kAccept:
      return "accept";
    case FrameVerdict::kRepair:
      return "repair";
    case FrameVerdict::kQuarantine:
      return "quarantine";
  }
  return "unknown";
}

const char* ToString(LinkStatus status) {
  switch (status) {
    case LinkStatus::kHealthy:
      return "healthy";
    case LinkStatus::kDegraded:
      return "degraded";
    case LinkStatus::kCritical:
      return "critical";
  }
  return "unknown";
}

const char* ToString(CalibrationLadder state) {
  switch (state) {
    case CalibrationLadder::kHealthy:
      return "healthy";
    case CalibrationLadder::kDriftSuspected:
      return "drift-suspected";
    case CalibrationLadder::kRecalibrating:
      return "recalibrating";
    case CalibrationLadder::kDegraded:
      return "degraded";
    case CalibrationLadder::kFrozen:
      return "frozen";
  }
  return "unknown";
}

std::uint64_t LinkHealth::FaultCount(FrameFault fault) const {
  if (fault == FrameFault::kNone) return 0;
  return fault_counts[FaultIndex(fault)];
}

LinkStatus Status(const LinkHealth& health) {
  if (health.received > 0 && health.quarantined * 2 > health.received) {
    return LinkStatus::kCritical;
  }
  if (health.dead_antenna_mask != 0 || health.profile_drift ||
      health.degraded ||
      health.calibration_state >= CalibrationLadder::kDegraded) {
    return LinkStatus::kDegraded;
  }
  return LinkStatus::kHealthy;
}

FrameGuard::FrameGuard(FrameGuardConfig config) : config_(config) {
  MULINK_REQUIRE(config_.dead_antenna_packets >= 1,
                 "FrameGuard: dead_antenna_packets must be >= 1");
  MULINK_REQUIRE(config_.rssi_outlier_sigma > 0.0,
                 "FrameGuard: rssi_outlier_sigma must be > 0");
  MULINK_REQUIRE(
      config_.rssi_ewma_alpha > 0.0 && config_.rssi_ewma_alpha <= 1.0,
      "FrameGuard: rssi_ewma_alpha must be in (0, 1]");
  locked_antennas_ = config_.expected_antennas;
  locked_subcarriers_ = config_.expected_subcarriers;
}

void FrameGuard::Reset() {
  health_ = LinkHealth{};
  have_sequence_ = false;
  last_sequence_ = 0;
  rssi_mean_ = 0.0;
  rssi_var_ = 0.0;
  rssi_seen_ = 0;
  dead_streak_.assign(dead_streak_.size(), 0);
  live_streak_.assign(live_streak_.size(), 0);
}

FrameReport FrameGuard::Inspect(const wifi::CsiPacket& packet) {
  FrameReport report;
  ++health_.received;

  auto flag = [&](FrameFault fault) {
    report.faults |= FaultBit(fault);
    ++health_.fault_counts[FaultIndex(fault)];
  };
  auto quarantine = [&](FrameFault fault) {
    flag(fault);
    report.verdict = FrameVerdict::kQuarantine;
    ++health_.quarantined;
    return report;
  };

  // Shape: lock onto the first frame (or the configured shape) and reject
  // anything else — the ring's packet slots and the detector's profile are
  // shaped for exactly one (antennas, subcarriers) pair.
  const std::size_t ants = packet.NumAntennas();
  const std::size_t scs = packet.NumSubcarriers();
  if (locked_antennas_ == 0) locked_antennas_ = ants;
  if (locked_subcarriers_ == 0) locked_subcarriers_ = scs;
  if (ants != locked_antennas_ || scs != locked_subcarriers_ || ants == 0 ||
      scs == 0) {
    return quarantine(FrameFault::kShapeMismatch);
  }
  if (dead_streak_.size() != ants) {
    dead_streak_.assign(ants, 0);
    live_streak_.assign(ants, 0);
  }

  // Non-finite scan over the CSI and the metadata the pipeline consumes.
  bool finite = std::isfinite(packet.timestamp_s) &&
                std::isfinite(packet.rssi_db);
  const Complex* csi = packet.csi.raw();
  const std::size_t cells = ants * scs;
  for (std::size_t i = 0; finite && i < cells; ++i) {
    finite = std::isfinite(csi[i].real()) && std::isfinite(csi[i].imag());
  }
  if (!finite) {
    return quarantine(FrameFault::kNonFinite);
  }

  // Per-antenna energy (reused for zero-energy and dead-chain checks).
  double max_row_power = 0.0;
  double total_power = 0.0;
  std::array<double, 64> row_power_buf{};
  MULINK_ASSERT_MSG(ants <= row_power_buf.size(),
                    "FrameGuard: more antennas than supported");
  for (std::size_t m = 0; m < ants; ++m) {
    double row = 0.0;
    const Complex* p = csi + m * scs;
    for (std::size_t k = 0; k < scs; ++k) row += std::norm(p[k]);
    row_power_buf[m] = row;
    total_power += row;
    if (row > max_row_power) max_row_power = row;
  }
  if (total_power <= 0.0) {
    return quarantine(FrameFault::kZeroEnergy);
  }

  // Sequence discipline. Only usable frames advance the reference, so a
  // quarantined frame surfaces as a gap on the next good one — from the
  // ring's point of view it *is* missing.
  if (have_sequence_) {
    if (packet.sequence == last_sequence_) {
      return quarantine(FrameFault::kDuplicateSequence);
    }
    if (packet.sequence < last_sequence_) {
      return quarantine(FrameFault::kReorderedSequence);
    }
    if (packet.sequence > last_sequence_ + 1) {
      report.gap =
          static_cast<std::size_t>(packet.sequence - last_sequence_ - 1);
      health_.missing += report.gap;
      flag(FrameFault::kSequenceGap);
      report.resync = report.gap > config_.max_gap_packets;
    }
  }
  have_sequence_ = true;
  last_sequence_ = packet.sequence;

  // Dead RX chain: a row far below the strongest chain for N consecutive
  // frames is declared dead; the same streak of live frames revives it.
  for (std::size_t m = 0; m < ants; ++m) {
    const bool silent =
        row_power_buf[m] < config_.dead_antenna_rel_power * max_row_power;
    const std::uint32_t bit = 1u << m;
    if (silent) {
      live_streak_[m] = 0;
      if (dead_streak_[m] < config_.dead_antenna_packets) ++dead_streak_[m];
      if (dead_streak_[m] >= config_.dead_antenna_packets &&
          (health_.dead_antenna_mask & bit) == 0) {
        health_.dead_antenna_mask |= bit;
        report.antenna_died = static_cast<int>(m);
      }
    } else {
      dead_streak_[m] = 0;
      if (live_streak_[m] < config_.dead_antenna_packets) ++live_streak_[m];
      if (live_streak_[m] >= config_.dead_antenna_packets) {
        health_.dead_antenna_mask &= ~bit;
      }
    }
  }
  if (health_.dead_antenna_mask != 0) {
    flag(FrameFault::kDeadAntenna);
    report.verdict = FrameVerdict::kRepair;
  }

  // RSSI outlier (AGC jump). The EWMA statistics update on every usable
  // frame, but a flagged outlier contributes a residual clamped to
  // rssi_outlier_clamp_sigma x sigma (see FrameGuardConfig): folded in at
  // full weight, one 12 dB excursion inflates the variance so much that
  // the rest of an AGC burst sails under the sigma gate — the guard would
  // flag exactly one frame per burst, too few for the calibration ladder's
  // AGC fast re-baseline. With the clamp every frame of a short burst is
  // flagged, while a persistent gain step still converges: each clamped
  // update walks the mean toward the new level and widens sigma until the
  // step is in-family, after which flagging stops.
  bool rssi_outlier = false;
  double rssi_clamp = 0.0;
  if (rssi_seen_ >= config_.rssi_warmup_packets) {
    const double sigma = std::sqrt(std::max(rssi_var_, 1e-12));
    rssi_clamp = config_.rssi_outlier_clamp_sigma * sigma;
    if (std::abs(packet.rssi_db - rssi_mean_) >
        std::max(config_.rssi_outlier_sigma * sigma,
                 config_.rssi_outlier_min_db)) {
      rssi_outlier = true;
      flag(FrameFault::kRssiOutlier);
      report.verdict = FrameVerdict::kRepair;
    }
  }
  if (rssi_seen_ == 0) {
    rssi_mean_ = packet.rssi_db;
    rssi_var_ = 0.0;
  } else {
    const double alpha = config_.rssi_ewma_alpha;
    double delta = packet.rssi_db - rssi_mean_;
    if (rssi_outlier) delta = std::clamp(delta, -rssi_clamp, rssi_clamp);
    rssi_mean_ += alpha * delta;
    rssi_var_ = (1.0 - alpha) * (rssi_var_ + alpha * delta * delta);
  }
  ++rssi_seen_;

  if (report.verdict == FrameVerdict::kRepair) {
    ++health_.repaired;
  } else {
    ++health_.accepted;
  }
  return report;
}

}  // namespace mulink::nic
