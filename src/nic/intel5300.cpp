#include "nic/intel5300.h"

#include <algorithm>
#include <cmath>

#include "common/assert.h"

namespace mulink::nic {

Intel5300Emulator::Intel5300Emulator(Intel5300Config config)
    : config_(config) {
  MULINK_REQUIRE(config_.full_scale > 0.0,
                 "Intel5300Emulator: full scale must be > 0");
}

wifi::CsiPacket Intel5300Emulator::Report(const linalg::CMatrix& cfr,
                                          double timestamp_s,
                                          std::uint64_t sequence,
                                          std::uint32_t dead_antenna_mask) const {
  wifi::CsiPacket packet;
  packet.timestamp_s = timestamp_s;
  packet.sequence = sequence;

  const auto dead = [dead_antenna_mask](std::size_t m) {
    return (dead_antenna_mask >> m) & 1u;
  };

  if (!config_.quantize) {
    packet.csi = cfr;
    for (std::size_t m = 0; m < cfr.rows(); ++m) {
      if (!dead(m)) continue;
      for (std::size_t k = 0; k < cfr.cols(); ++k) {
        packet.csi.At(m, k) = Complex(0.0, 0.0);
      }
    }
  } else {
    // AGC: scale the strongest component to (near) full scale, snap to the
    // integer lattice, then undo the scale so the packet stays in channel
    // units with quantization error baked in. Dead chains are excluded from
    // the peak scan — the gain retrains on the surviving rows.
    double peak = 0.0;
    for (std::size_t m = 0; m < cfr.rows(); ++m) {
      if (dead(m)) continue;
      for (std::size_t k = 0; k < cfr.cols(); ++k) {
        peak = std::max({peak, std::abs(cfr.At(m, k).real()),
                         std::abs(cfr.At(m, k).imag())});
      }
    }
    linalg::CMatrix q(cfr.rows(), cfr.cols());
    if (peak > 0.0) {
      const double agc = config_.full_scale / peak;
      for (std::size_t m = 0; m < cfr.rows(); ++m) {
        if (dead(m)) continue;
        for (std::size_t k = 0; k < cfr.cols(); ++k) {
          const Complex v = cfr.At(m, k) * agc;
          const double re = std::clamp(std::round(v.real()), -128.0, 127.0);
          const double im = std::clamp(std::round(v.imag()), -128.0, 127.0);
          q.At(m, k) = Complex(re, im) / agc;
        }
      }
    }
    packet.csi = std::move(q);
  }

  const double total = packet.TotalPower();
  packet.rssi_db = total > 0.0 ? 10.0 * std::log10(total) : -300.0;
  return packet;
}

}  // namespace mulink::nic
