// Thin process wrapper around the CLI library (tools/cli.h) — all behaviour
// lives in RunCli so the exit-code contract is tested in-process.
#include <iostream>
#include <string>
#include <vector>

#include "cli.h"

int main(int argc, char** argv) {
  std::vector<std::string> args;
  args.reserve(static_cast<std::size_t>(argc > 0 ? argc - 1 : 0));
  for (int i = 1; i < argc; ++i) args.emplace_back(argv[i]);
  return mulink::tools::RunCli(args, std::cout, std::cerr);
}
