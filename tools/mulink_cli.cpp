// mulink command-line tool: simulate, inspect, and analyze CSI sessions.
//
//   mulink simulate --scenario classroom --packets 500 --out empty.mlnk
//   mulink simulate --scenario classroom --human 3.0,4.5 --out person.mlnk
//   mulink info session.mlnk
//   mulink export-csv session.mlnk session.csv
//   mulink detect --calibration empty.mlnk --session person.mlnk
//                 [--scheme combined] [--window 25]
//   mulink spectrum --calibration empty.mlnk
//   mulink breath --session sleeper.mlnk --rate 50
//
// Files use the binary format of nic/csi_io.h, so sessions converted from
// real Intel 5300 CSI Tool traces drop straight in.
#include <iostream>
#include <map>
#include <optional>
#include <string>

#include "common/error.h"
#include "common/rng.h"
#include "core/breath.h"
#include "core/detector.h"
#include "core/engine.h"
#include "core/music.h"
#include "core/sanitize.h"
#include "dsp/stats.h"
#include "experiments/format.h"
#include "experiments/scenario.h"
#include "nic/csi_io.h"

using namespace mulink;
namespace ex = mulink::experiments;

namespace {

struct Args {
  std::string command;
  std::vector<std::string> positional;
  std::map<std::string, std::string> options;
};

Args Parse(int argc, char** argv) {
  Args args;
  if (argc >= 2) args.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    std::string token = argv[i];
    if (token.rfind("--", 0) == 0) {
      const std::string key = token.substr(2);
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        args.options[key] = argv[++i];
      } else {
        args.options[key] = "true";
      }
    } else {
      args.positional.push_back(std::move(token));
    }
  }
  return args;
}

std::string Option(const Args& args, const std::string& key,
                   const std::string& fallback) {
  const auto it = args.options.find(key);
  return it == args.options.end() ? fallback : it->second;
}

ex::LinkCase ScenarioByName(const std::string& name) {
  if (name == "classroom") return ex::MakeClassroomLink();
  if (name == "wall") return ex::MakeShortWallLink();
  if (name == "through-wall") return ex::MakeThroughWallLink();
  const auto cases = ex::MakePaperCases();
  for (std::size_t i = 0; i < cases.size(); ++i) {
    if (name == "case" + std::to_string(i + 1)) return cases[i];
  }
  throw PreconditionError(
      "unknown scenario '" + name +
      "' (try: classroom, wall, through-wall, case1..case5)");
}

core::DetectionScheme SchemeByName(const std::string& name) {
  if (name == "baseline") return core::DetectionScheme::kBaseline;
  if (name == "subcarrier") return core::DetectionScheme::kSubcarrierWeighting;
  if (name == "combined") {
    return core::DetectionScheme::kSubcarrierAndPathWeighting;
  }
  if (name == "variance") return core::DetectionScheme::kVarianceMobile;
  throw PreconditionError("unknown scheme '" + name +
                          "' (baseline|subcarrier|combined|variance)");
}

geometry::Vec2 ParsePoint(const std::string& text) {
  const auto comma = text.find(',');
  if (comma == std::string::npos) {
    throw PreconditionError("expected x,y but got '" + text + "'");
  }
  return {std::stod(text.substr(0, comma)), std::stod(text.substr(comma + 1))};
}

int Simulate(const Args& args) {
  const auto lc = ScenarioByName(Option(args, "scenario", "classroom"));
  const auto packets =
      static_cast<std::size_t>(std::stoul(Option(args, "packets", "500")));
  const auto out = Option(args, "out", "");
  if (out.empty()) throw PreconditionError("--out <file.mlnk> is required");
  Rng rng(std::stoull(Option(args, "seed", "1")));

  auto sim_config = ex::DefaultSimConfig();
  // NIC fault processes (nic/fault_injection.h). Any --fault-* option turns
  // the injector on; it draws from its own RNG stream, so the channel
  // realization matches the clean capture packet for packet.
  auto& faults = sim_config.faults;
  if (args.options.count("fault-drop")) {
    faults.drop_prob = std::stod(args.options.at("fault-drop"));
  }
  if (args.options.count("fault-reorder")) {
    faults.reorder_prob = std::stod(args.options.at("fault-reorder"));
  }
  if (args.options.count("fault-corrupt")) {
    faults.corrupt_prob = std::stod(args.options.at("fault-corrupt"));
  }
  if (args.options.count("fault-dead-antenna")) {
    faults.dead_antenna = std::stoi(args.options.at("fault-dead-antenna"));
  }
  faults.enabled = faults.drop_prob > 0.0 || faults.reorder_prob > 0.0 ||
                   faults.corrupt_prob > 0.0 || faults.dead_antenna >= 0;
  if (faults.enabled) {
    faults.seed = std::stoull(Option(args, "fault-seed", "1"));
  }
  if (args.options.count("calm")) {
    // Bedroom-style conditions for respiration captures: no co-channel
    // bursts, minimal drift and sway.
    sim_config.interference_entry_prob = 0.0;
    sim_config.slow_gain_drift_db = 0.05;
    sim_config.human_sway_sigma_m = 0.001;
    sim_config.background_jitter_m = 0.001;
  }
  auto sim = ex::MakeSimulator(lc, sim_config);
  std::optional<propagation::HumanBody> human;
  if (args.options.count("human")) {
    propagation::HumanBody body;
    body.position = ParsePoint(args.options.at("human"));
    if (args.options.count("breathing-bpm")) {
      body.breathing_rate_hz =
          std::stod(args.options.at("breathing-bpm")) / 60.0;
      body.breathing_amplitude_m = 0.006;
    }
    human = body;
  }
  const auto session = sim.CaptureSession(packets, human, rng);
  nic::WriteCsiSession(out, session);
  std::cout << "wrote " << session.size() << " packets (" << lc.name << ", "
            << (human.has_value() ? "human present" : "empty room") << ") to "
            << out << "\n";
  return 0;
}

int Info(const Args& args) {
  if (args.positional.empty()) {
    throw PreconditionError("usage: mulink info <file.mlnk>");
  }
  const auto session = nic::ReadCsiSession(args.positional[0]);
  const auto& first = session.front();
  std::cout << "packets:      " << session.size() << "\n"
            << "antennas:     " << first.NumAntennas() << "\n"
            << "subcarriers:  " << first.NumSubcarriers() << "\n"
            << "duration:     "
            << ex::Fmt(session.back().timestamp_s - first.timestamp_s, 2)
            << " s\n";
  std::vector<double> rssi;
  for (const auto& packet : session) rssi.push_back(packet.rssi_db);
  std::cout << "rssi (dB):    median " << ex::Fmt(dsp::Median(rssi), 1)
            << ", p5 " << ex::Fmt(dsp::Quantile(rssi, 0.05), 1) << ", p95 "
            << ex::Fmt(dsp::Quantile(rssi, 0.95), 1) << "\n";
  return 0;
}

int ExportCsv(const Args& args) {
  if (args.positional.size() < 2) {
    throw PreconditionError("usage: mulink export-csv <in.mlnk> <out.csv>");
  }
  const auto session = nic::ReadCsiSession(args.positional[0]);
  nic::ExportCsiCsv(args.positional[1], session);
  std::cout << "exported " << session.size() << " packets to "
            << args.positional[1] << "\n";
  return 0;
}

int Detect(const Args& args) {
  const auto calibration_path = Option(args, "calibration", "");
  const auto session_path = Option(args, "session", "");
  if (calibration_path.empty() || session_path.empty()) {
    throw PreconditionError(
        "--calibration <file> and --session <file> are required");
  }
  // With --guard the session is read tolerantly: corrupt (non-finite)
  // frames reach the frame guard, which quarantines them with a diagnosis
  // instead of the loader rejecting the whole file. Calibration must be
  // clean either way.
  const bool guard = args.options.count("guard") > 0;
  const auto calibration = nic::ReadCsiSession(calibration_path);
  const auto session = nic::ReadCsiSession(
      session_path,
      guard ? nic::CsiReadMode::kTolerant : nic::CsiReadMode::kStrict);

  core::DetectorConfig config;
  config.scheme = SchemeByName(Option(args, "scheme", "combined"));
  config.window_packets =
      static_cast<std::size_t>(std::stoul(Option(args, "window", "25")));

  const auto band = wifi::BandPlan::Intel5300Channel11();
  const wifi::UniformLinearArray array(calibration.front().NumAntennas(),
                                       kWavelength / 2.0, kPi / 2.0);
  auto detector = core::Detector::Calibrate(calibration, band, array, config);

  // Threshold from the calibration session's own windows.
  std::vector<std::vector<wifi::CsiPacket>> empty_windows;
  for (std::size_t start = 0;
       start + config.window_packets <= calibration.size();
       start += config.window_packets) {
    empty_windows.emplace_back(
        calibration.begin() + static_cast<std::ptrdiff_t>(start),
        calibration.begin() +
            static_cast<std::ptrdiff_t>(start + config.window_packets));
  }
  detector.CalibrateThreshold(empty_windows);
  std::cout << "scheme " << core::ToString(config.scheme) << ", threshold "
            << ex::Fmt(detector.threshold(), 4) << "\n";

  // Batch the whole session through the sensing engine: one decision per
  // non-overlapping window, scored on persistent per-link scratch.
  core::StreamingConfig stream;
  stream.window_packets = config.window_packets;
  stream.hop_packets = config.window_packets;
  stream.use_hmm = false;
  stream.guard_enabled = guard;
  core::SensingEngine engine;
  engine.AddLink(std::move(detector), {}, stream);
  const auto& batch =
      engine.ProcessBatch(std::span<const wifi::CsiPacket>(session));
  for (std::size_t i = 0; i < batch.decisions.size(); ++i) {
    const auto& decision = batch.decisions[i];
    std::cout << "window " << i << "  t="
              << ex::Fmt(static_cast<double>(i * config.window_packets) /
                             50.0,
                         1)
              << "s  score " << ex::Fmt(decision.score, 4) << "  "
              << (decision.occupied ? "PRESENT" : "-")
              << (decision.degraded ? "  [degraded]" : "") << "\n";
  }
  if (guard) {
    const nic::LinkHealth health = engine.Health(0);
    std::cout << "link health:  " << nic::ToString(nic::Status(health))
              << "\n"
              << "  frames:     " << health.received << " received, "
              << health.accepted << " accepted, " << health.repaired
              << " repaired, " << health.quarantined << " quarantined, "
              << health.missing << " missing\n";
    for (std::size_t f = 0; f < nic::kNumFrameFaults; ++f) {
      const auto fault = static_cast<nic::FrameFault>(1u << f);
      if (health.fault_counts[f] > 0) {
        std::cout << "  fault:      " << nic::ToString(fault) << " x"
                  << health.fault_counts[f] << "\n";
      }
    }
    if (health.dead_antenna_mask != 0) {
      std::cout << "  dead mask:  0x" << std::hex << health.dead_antenna_mask
                << std::dec << "\n";
    }
    if (health.degraded_decisions > 0) {
      std::cout << "  degraded:   " << health.degraded_decisions
                << " decisions on the fallback statistic\n";
    }
    if (health.profile_drift) {
      std::cout << "  WATCHDOG:   static profile drift detected — "
                   "recalibration due\n";
    }
  }
  return 0;
}

int Spectrum(const Args& args) {
  const auto calibration_path = Option(args, "calibration", "");
  if (calibration_path.empty()) {
    throw PreconditionError("--calibration <file> is required");
  }
  const auto calibration = nic::ReadCsiSession(calibration_path);
  const auto band = wifi::BandPlan::Intel5300Channel11();
  const wifi::UniformLinearArray array(calibration.front().NumAntennas(),
                                       kWavelength / 2.0, kPi / 2.0);
  const auto clean = core::SanitizePhase(calibration, band);
  const auto spectrum = core::ComputeMusicSpectrum(clean, array, band);
  const double peak = dsp::Max(spectrum.power);
  for (std::size_t i = 0; i < spectrum.theta_deg.size(); i += 5) {
    const double db =
        10.0 * std::log10(std::max(spectrum.power[i] / peak, 1e-9));
    const int bars = std::max(0, static_cast<int>(40.0 + db));
    std::cout << ex::Fmt(spectrum.theta_deg[i], 0) << "\t"
              << std::string(static_cast<std::size_t>(bars), '#') << "\n";
  }
  std::cout << "peaks:";
  for (double angle : spectrum.PeakAngles(3)) {
    std::cout << " " << ex::Fmt(angle, 1) << "deg";
  }
  std::cout << "\n";
  return 0;
}

int Breath(const Args& args) {
  const auto session_path = Option(args, "session", "");
  if (session_path.empty()) {
    throw PreconditionError("--session <file> is required");
  }
  const auto session = nic::ReadCsiSession(session_path);
  const double rate = std::stod(Option(args, "rate", "50"));
  const auto estimate = core::EstimateBreathing(session, rate);
  std::cout << "respiration: " << ex::Fmt(estimate.rate_hz * 60.0, 1)
            << " breaths/min (confidence "
            << ex::Fmt(estimate.confidence, 1) << ", "
            << (estimate.confidence > 3.0 ? "tracking" : "no clear breather")
            << ")\n";
  return 0;
}

void Usage() {
  std::cout <<
      "mulink — multipath link characterization toolkit\n\n"
      "commands:\n"
      "  simulate    --scenario <name> --packets <n> --out <file.mlnk>\n"
      "              [--human x,y] [--breathing-bpm n] [--seed n] [--calm]\n"
      "              [--fault-drop p] [--fault-reorder p] [--fault-corrupt p]\n"
      "              [--fault-dead-antenna m] [--fault-seed n]\n"
      "  info        <file.mlnk>\n"
      "  export-csv  <in.mlnk> <out.csv>\n"
      "  detect      --calibration <file> --session <file>\n"
      "              [--scheme baseline|subcarrier|combined|variance]\n"
      "              [--window n] [--guard]\n"
      "  spectrum    --calibration <file>\n"
      "  breath      --session <file> [--rate hz]\n"
      "\n"
      "exit codes: 0 ok, 1 runtime error, 2 bad usage/input,\n"
      "            3 numerical failure, 4 internal invariant violation,\n"
      "            5 unexpected exception\n";
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = Parse(argc, argv);
  // Each tier of the mulink error hierarchy maps to its own exit code so
  // scripts can tell bad input (2) from numerical trouble (3) from library
  // bugs (4) without parsing stderr.
  try {
    if (args.command == "simulate") return Simulate(args);
    if (args.command == "info") return Info(args);
    if (args.command == "export-csv") return ExportCsv(args);
    if (args.command == "detect") return Detect(args);
    if (args.command == "spectrum") return Spectrum(args);
    if (args.command == "breath") return Breath(args);
    Usage();
    return args.command.empty() ? 0 : 2;
  } catch (const PreconditionError& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  } catch (const NumericalError& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 3;
  } catch (const InvariantError& e) {
    std::cerr << "internal error: " << e.what() << "\n";
    return 4;
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  } catch (const std::exception& e) {
    std::cerr << "unexpected error: " << e.what() << "\n";
    return 5;
  }
}
