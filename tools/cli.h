// The mulink command-line tool as a library, so its behaviour — argument
// validation, exit codes, output formats — is testable in-process.
//
// RunCli is exactly `main` minus the process boundary: `args` is argv
// without the program name, normal output goes to `out`, diagnostics to
// `err`, and the return value is the process exit code:
//
//   0  success
//   1  runtime error (e.g. unreadable file)        mulink::Error
//   2  bad usage or bad input                      mulink::PreconditionError
//   3  numerical failure                           mulink::NumericalError
//   4  internal invariant violation                mulink::InvariantError
//   5  unexpected exception                        anything else
//
// Every argument-parse failure — unknown command, unknown option, an option
// missing its value, malformed numerics — is routed through
// PreconditionError, so scripts can rely on exit code 2 meaning "fix the
// invocation", never "the library broke".
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace mulink::tools {

int RunCli(const std::vector<std::string>& args, std::ostream& out,
           std::ostream& err);

}  // namespace mulink::tools
