#!/usr/bin/env python3
"""Unit tests for mulink-analyze, run under ctest (MulinkAnalyze.UnitTests).

Everything runs in-process through mulink_analyze.run() — the same entry
the CLI uses — so the exit-code contract (0 clean / 1 findings / 2 usage
error, the table mulink-lint and tools/cli.h also follow) is pinned where
it is implemented.

Each rule class carries planted-defect tests (the acceptance demo): a
helper allocation reached transitively from a MULINK_HOT root, an fma in
library code, an order-less atomic access, a direct obs Registry call —
every one must exit non-zero. The negative space is tested just as hard:
constructors, annotated sites, cold TUs, the rng home, shadowing locals
(the spsc_ring.h `const std::size_t seq = ...` pattern), and allocation
tokens buried in comments / strings / multi-line raw strings must all stay
clean. These run on the always-available micro backend; the cindex backend
soft-skip contract is tested in both directions.
"""

import io
import json
import os
import sys
import tempfile
import unittest
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
import mulink_analyze  # noqa: E402


def make_tree(root: Path, files: dict[str, str]) -> None:
    for rel, content in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(content, encoding="utf-8")


class AnalyzeHarness(unittest.TestCase):
    def run_analyze(self, argv):
        out, err = io.StringIO(), io.StringIO()
        code = mulink_analyze.run(argv, stdout=out, stderr=err)
        return code, out.getvalue(), err.getvalue()

    def analyze_tree(self, files: dict[str, str], extra_argv=()):
        with tempfile.TemporaryDirectory() as tmp:
            make_tree(Path(tmp), files)
            return self.run_analyze(
                ["--root", tmp, "--backend", "micro", *extra_argv])


class ExitCodeContract(AnalyzeHarness):
    """Exit codes 0/1/2, same table as mulink-lint and tools/cli.h."""

    def test_clean_tree_exits_0(self):
        code, out, _ = self.analyze_tree({
            "src/core/thing.cpp":
            "namespace mulink {\n"
            "double Sum(const double* x, int n) {\n"
            "  double s = 0.0;\n"
            "  for (int i = 0; i < n; ++i) s += x[i];\n"
            "  return s;\n"
            "}\n"
            "}  // namespace mulink\n"
        })
        self.assertEqual(code, mulink_analyze.EXIT_CLEAN)
        self.assertIn("0 finding(s)", out)

    def test_findings_exit_1(self):
        code, _, _ = self.analyze_tree({
            "src/core/thing.cpp":
            "MULINK_HOT void Hot(std::vector<double>& v) {\n"
            "  v.push_back(1.0);\n"
            "}\n"
        })
        self.assertEqual(code, mulink_analyze.EXIT_FINDINGS)

    def test_unknown_flag_exits_2(self):
        code, _, _ = self.run_analyze(["--no-such-flag"])
        self.assertEqual(code, mulink_analyze.EXIT_USAGE)

    def test_unknown_rule_exits_2(self):
        code, _, _ = self.run_analyze(["--rule", "no-such-rule"])
        self.assertEqual(code, mulink_analyze.EXIT_USAGE)

    def test_missing_root_exits_2(self):
        code, _, err = self.run_analyze(["--root", "/no/such/dir/anywhere"])
        self.assertEqual(code, mulink_analyze.EXIT_USAGE)
        self.assertIn("no such directory", err)

    def test_missing_file_argument_exits_2(self):
        with tempfile.TemporaryDirectory() as tmp:
            code, _, err = self.run_analyze(
                ["--root", tmp, "src/nope.cpp"])
        self.assertEqual(code, mulink_analyze.EXIT_USAGE)
        self.assertIn("no such file", err)

    def test_list_rules_exits_0(self):
        code, out, _ = self.run_analyze(["--list-rules"])
        self.assertEqual(code, mulink_analyze.EXIT_CLEAN)
        for rule in mulink_analyze.RULES:
            self.assertIn(rule, out)


class HotPathAllocRule(AnalyzeHarness):
    """Allocation reachability from MULINK_HOT roots — the semantic upgrade
    over the lint's per-TU token rule."""

    def test_direct_allocation_in_hot_function_fails(self):
        code, out, _ = self.analyze_tree({
            "src/core/score.cpp":
            "MULINK_HOT double Score(int n) {\n"
            "  double* p = new double[8];\n"
            "  return p[0] * n;\n"
            "}\n"
        }, ["--rule", "hot-path-alloc"])
        self.assertEqual(code, mulink_analyze.EXIT_FINDINGS)
        self.assertIn("hot-path-alloc", out)
        self.assertIn("`new`", out)

    def test_transitive_allocation_through_helper_fails(self):
        # The lint cannot see this: the helper carries no MULINK_HOT marker
        # and lives in a different TU. Reachability through the call graph
        # is the whole point of the analyzer.
        code, out, _ = self.analyze_tree({
            "src/core/score.cpp":
            "MULINK_HOT double Score(std::vector<double>& v) {\n"
            "  return Helper(v);\n"
            "}\n",
            "src/core/helper.cpp":
            "double Helper(std::vector<double>& v) {\n"
            "  v.push_back(1.0);\n"
            "  return v.back();\n"
            "}\n",
        }, ["--rule", "hot-path-alloc"])
        self.assertEqual(code, mulink_analyze.EXIT_FINDINGS)
        self.assertIn("helper.cpp", out)
        self.assertIn("push_back", out)

    def test_hot_marker_on_header_declaration_roots_the_definition(self):
        code, out, _ = self.analyze_tree({
            "src/core/api.h":
            "#pragma once\n"
            "MULINK_HOT double Score(int n);\n",
            "src/core/api.cpp":
            "#include \"core/api.h\"\n"
            "double Score(int n) {\n"
            "  std::vector<double> tmp;\n"
            "  tmp.reserve(static_cast<std::size_t>(n));\n"
            "  return 0.0;\n"
            "}\n",
        }, ["--rule", "hot-path-alloc"])
        self.assertEqual(code, mulink_analyze.EXIT_FINDINGS)
        self.assertIn("reserve", out)

    def test_unreachable_allocation_is_clean(self):
        # Same allocation, no path from any hot root: setup code is allowed
        # to allocate. This is the false-positive class the token rule
        # could only handle with blanket cold-tu annotations.
        code, _, _ = self.analyze_tree({
            "src/core/setup.cpp":
            "void BuildTables(std::vector<double>& v) {\n"
            "  v.resize(1024);\n"
            "}\n"
        }, ["--rule", "hot-path-alloc"])
        self.assertEqual(code, mulink_analyze.EXIT_CLEAN)

    def test_constructors_are_exempt(self):
        # Hot objects allocate in their constructors (slab reservation is
        # the repo-wide idiom); reachability must not walk into ctors.
        code, _, _ = self.analyze_tree({
            "src/serve/slab.h":
            "class Slab {\n"
            " public:\n"
            "  Slab() { storage_.resize(4096); }\n"
            "  MULINK_HOT double* Get() { return storage_.data(); }\n"
            " private:\n"
            "  std::vector<double> storage_;\n"
            "};\n"
        }, ["--rule", "hot-path-alloc"])
        self.assertEqual(code, mulink_analyze.EXIT_CLEAN)

    def test_allow_annotation_suppresses(self):
        code, _, _ = self.analyze_tree({
            "src/core/score.cpp":
            "MULINK_HOT double Score(std::vector<double>& v) {\n"
            "  // mulink-lint: allow(alloc): amortized growth, measured\n"
            "  v.push_back(1.0);\n"
            "  return v.back();\n"
            "}\n"
        }, ["--rule", "hot-path-alloc"])
        self.assertEqual(code, mulink_analyze.EXIT_CLEAN)

    def test_cold_tu_marker_opts_out(self):
        code, _, _ = self.analyze_tree({
            "src/core/report.cpp":
            "// mulink-lint: cold-tu(report generation, not on any hot path)\n"
            "MULINK_HOT void Oddball(std::vector<double>& v) {\n"
            "  v.push_back(1.0);\n"
            "}\n"
        }, ["--rule", "hot-path-alloc"])
        self.assertEqual(code, mulink_analyze.EXIT_CLEAN)

    def test_alloc_outside_hot_dirs_is_clean(self):
        code, _, _ = self.analyze_tree({
            "src/experiments/campaign.cpp":
            "MULINK_HOT void Run(std::vector<double>& v) {\n"
            "  v.push_back(1.0);\n"
            "}\n"
        }, ["--rule", "hot-path-alloc"])
        self.assertEqual(code, mulink_analyze.EXIT_CLEAN)


class LexerFidelity(AnalyzeHarness):
    """Rule tokens inside comments and literals never produce findings —
    the analyzer lexes for real instead of regex-stripping."""

    def test_tokens_in_comments_and_strings_ignored(self):
        code, _, _ = self.analyze_tree({
            "src/core/doc.cpp":
            "MULINK_HOT double Score(int n) {\n"
            "  // a cold caller may push_back( into the staging vector\n"
            "  /* new int[4] would be wrong here */\n"
            "  const char* msg = \"calls malloc( under the hood\";\n"
            "  (void)msg;\n"
            "  return 1.0 * n;\n"
            "}\n"
        })
        self.assertEqual(code, mulink_analyze.EXIT_CLEAN)

    def test_multiline_raw_string_is_opaque(self):
        # The regression class the token linter historically leaked on:
        # a raw string spanning lines whose body mentions allocation and
        # atomic tokens.
        code, _, _ = self.analyze_tree({
            "src/core/doc.cpp":
            "MULINK_HOT const char* Usage() {\n"
            "  return R\"(usage:\n"
            "    push_back( onto the queue; allocates via new int[4]\n"
            "    counter.fetch_add(1) bumps the total\n"
            "  )\";\n"
            "}\n"
        })
        self.assertEqual(code, mulink_analyze.EXIT_CLEAN)

    def test_preprocessor_lines_are_opaque(self):
        code, _, _ = self.analyze_tree({
            "src/core/config.cpp":
            "#define SCRATCH_HINT push_back\n"
            "MULINK_HOT double Score(int n) { return 1.0 * n; }\n"
        })
        self.assertEqual(code, mulink_analyze.EXIT_CLEAN)


class DeterminismRule(AnalyzeHarness):
    def test_fma_outside_kernels_fails(self):
        code, out, _ = self.analyze_tree({
            "src/core/score.cpp":
            "double Blend(double a, double b, double c) {\n"
            "  return std::fma(a, b, c);\n"
            "}\n"
        }, ["--rule", "determinism"])
        self.assertEqual(code, mulink_analyze.EXIT_FINDINGS)
        self.assertIn("fma", out)

    def test_fma_inside_kernels_is_the_owners_call(self):
        code, _, _ = self.analyze_tree({
            "src/kernels/poly.cpp":
            "double Horner(double a, double b, double c) {\n"
            "  return std::fma(a, b, c);\n"
            "}\n"
        }, ["--rule", "determinism"])
        self.assertEqual(code, mulink_analyze.EXIT_CLEAN)

    def test_unordered_iteration_fails(self):
        code, out, _ = self.analyze_tree({
            "src/serve/dump.cpp":
            "std::unordered_map<int, int> table;\n"
            "int Serialize() {\n"
            "  int s = 0;\n"
            "  for (const auto& kv : table) s += kv.second;\n"
            "  return s;\n"
            "}\n"
        }, ["--rule", "determinism"])
        self.assertEqual(code, mulink_analyze.EXIT_FINDINGS)
        self.assertIn("unordered", out)

    def test_ordered_iteration_is_clean(self):
        code, _, _ = self.analyze_tree({
            "src/serve/dump.cpp":
            "std::map<int, int> table;\n"
            "int Serialize() {\n"
            "  int s = 0;\n"
            "  for (const auto& kv : table) s += kv.second;\n"
            "  return s;\n"
            "}\n"
        }, ["--rule", "determinism"])
        self.assertEqual(code, mulink_analyze.EXIT_CLEAN)

    def test_wall_clock_fails_steady_clock_clean(self):
        code, out, _ = self.analyze_tree({
            "src/obs/clock.cpp":
            "long Wall() {\n"
            "  return std::chrono::system_clock::now()"
            ".time_since_epoch().count();\n"
            "}\n"
            "long Mono() {\n"
            "  return std::chrono::steady_clock::now()"
            ".time_since_epoch().count();\n"
            "}\n"
        }, ["--rule", "determinism"])
        self.assertEqual(code, mulink_analyze.EXIT_FINDINGS)
        self.assertIn("system_clock", out)
        self.assertNotIn("steady_clock`", out)

    def test_ambient_rng_outside_home_fails(self):
        code, out, _ = self.analyze_tree({
            "src/dsp/jitter.cpp":
            "double Jitter() {\n"
            "  static std::mt19937 gen(std::random_device{}());\n"
            "  return static_cast<double>(gen());\n"
            "}\n"
        }, ["--rule", "determinism"])
        self.assertEqual(code, mulink_analyze.EXIT_FINDINGS)
        self.assertIn("mt19937", out)

    def test_rng_home_is_exempt(self):
        code, _, _ = self.analyze_tree({
            "src/common/rng.cpp":
            "unsigned Draw() {\n"
            "  static std::mt19937_64 gen(0xBEEF);\n"
            "  return static_cast<unsigned>(gen());\n"
            "}\n"
        }, ["--rule", "determinism"])
        self.assertEqual(code, mulink_analyze.EXIT_CLEAN)

    def test_time_null_seed_fails(self):
        code, _, _ = self.analyze_tree({
            "src/experiments/seed.cpp":
            "long Seed() { return time(nullptr); }\n"
        }, ["--rule", "determinism"])
        self.assertEqual(code, mulink_analyze.EXIT_FINDINGS)

    def test_allow_annotation_suppresses(self):
        code, _, _ = self.analyze_tree({
            "src/obs/clock.cpp":
            "long Wall() {\n"
            "  // mulink-analyze: allow(determinism): artifact timestamps\n"
            "  return std::chrono::system_clock::now()"
            ".time_since_epoch().count();\n"
            "}\n"
        }, ["--rule", "determinism"])
        self.assertEqual(code, mulink_analyze.EXIT_CLEAN)


ATOMIC_DECL = "std::atomic<std::size_t> head_{0};\n"


class AtomicsRule(AnalyzeHarness):
    def test_orderless_member_call_fails(self):
        code, out, _ = self.analyze_tree({
            "src/serve/ring.cpp":
            ATOMIC_DECL +
            "void Bump() { head_.fetch_add(1); }\n"
        }, ["--rule", "atomics"])
        self.assertEqual(code, mulink_analyze.EXIT_FINDINGS)
        self.assertIn("explicit memory_order", out)

    def test_operator_form_access_fails(self):
        code, out, _ = self.analyze_tree({
            "src/serve/ring.cpp":
            ATOMIC_DECL +
            "void Bump() { ++head_; }\n"
        }, ["--rule", "atomics"])
        self.assertEqual(code, mulink_analyze.EXIT_FINDINGS)
        self.assertIn("seq_cst by definition", out)

    def test_explicit_orders_are_clean(self):
        code, _, _ = self.analyze_tree({
            "src/serve/ring.cpp":
            ATOMIC_DECL +
            "void Publish(std::size_t v) {\n"
            "  head_.store(v, std::memory_order_release);\n"
            "}\n"
            "std::size_t Read() {\n"
            "  return head_.load(std::memory_order_acquire);\n"
            "}\n"
        }, ["--rule", "atomics"])
        self.assertEqual(code, mulink_analyze.EXIT_CLEAN)

    def test_relaxed_store_against_acquire_load_fails(self):
        code, out, _ = self.analyze_tree({
            "src/serve/ring.cpp":
            ATOMIC_DECL +
            "void Publish(std::size_t v) {\n"
            "  head_.store(v, std::memory_order_relaxed);\n"
            "}\n"
            "std::size_t Read() {\n"
            "  return head_.load(std::memory_order_acquire);\n"
            "}\n"
        }, ["--rule", "atomics"])
        self.assertEqual(code, mulink_analyze.EXIT_FINDINGS)
        self.assertIn("no release edge", out)

    def test_constructor_relaxed_seeding_is_exempt(self):
        # spsc_ring.h's cell-sequence seeding: relaxed stores before the
        # object is published are the idiom, not a missing release edge.
        code, _, _ = self.analyze_tree({
            "src/serve/ring.h":
            "class Ring {\n"
            " public:\n"
            "  Ring() { seq_.store(0, std::memory_order_relaxed); }\n"
            "  std::size_t Read() const {\n"
            "    return seq_.load(std::memory_order_acquire);\n"
            "  }\n"
            " private:\n"
            "  std::atomic<std::size_t> seq_{0};\n"
            "};\n"
        }, ["--rule", "atomics"])
        self.assertEqual(code, mulink_analyze.EXIT_CLEAN)

    def test_shadowing_local_is_not_an_atomic_access(self):
        # Regression pin for the spsc_ring.h pattern: a local `const
        # std::size_t seq = cell.seq.load(...)` shadows the atomic member
        # name; its initialization is not an operator-form atomic store.
        code, _, _ = self.analyze_tree({
            "src/serve/ring.h":
            "class Ring {\n"
            " public:\n"
            "  bool TryPop() {\n"
            "    const std::size_t seq = seq_.load(std::memory_order_acquire);\n"
            "    return seq != 0;\n"
            "  }\n"
            " private:\n"
            "  std::atomic<std::size_t> seq_{0};\n"
            "};\n"
        }, ["--rule", "atomics"])
        self.assertEqual(code, mulink_analyze.EXIT_CLEAN)

    def test_allow_annotation_suppresses(self):
        code, _, _ = self.analyze_tree({
            "src/serve/ring.cpp":
            ATOMIC_DECL +
            "void Bump() {\n"
            "  // mulink-analyze: allow(atomics): sc fence intended here\n"
            "  head_.fetch_add(1);\n"
            "}\n"
        }, ["--rule", "atomics"])
        self.assertEqual(code, mulink_analyze.EXIT_CLEAN)


class ObsDisciplineRule(AnalyzeHarness):
    def test_direct_registry_call_fails(self):
        code, out, _ = self.analyze_tree({
            "src/core/engine.cpp":
            "void Tick(obs::Registry& metrics) {\n"
            "  metrics.Add(obs::Counter::kFramesIngested, 1);\n"
            "}\n"
        }, ["--rule", "obs-discipline"])
        self.assertEqual(code, mulink_analyze.EXIT_FINDINGS)
        self.assertIn("MULINK_OBS_", out)

    def test_direct_timer_construction_fails(self):
        code, _, _ = self.analyze_tree({
            "src/core/engine.cpp":
            "void Tick(obs::Registry& metrics) {\n"
            "  obs::ScopedStageTimer timer(metrics, obs::Stage::kScore);\n"
            "  (void)timer;\n"
            "}\n"
        }, ["--rule", "obs-discipline"])
        self.assertEqual(code, mulink_analyze.EXIT_FINDINGS)

    def test_macro_call_is_clean(self):
        code, _, _ = self.analyze_tree({
            "src/core/engine.cpp":
            "void Tick(obs::Registry& metrics) {\n"
            "  MULINK_OBS_COUNT(metrics, kFramesIngested, 1);\n"
            "  MULINK_OBS_STAGE_TIMER(metrics, kScore);\n"
            "}\n"
        }, ["--rule", "obs-discipline"])
        self.assertEqual(code, mulink_analyze.EXIT_CLEAN)

    def test_obs_subsystem_itself_is_exempt(self):
        code, _, _ = self.analyze_tree({
            "src/obs/registry.cpp":
            "void Registry::Add(obs::Counter c, std::uint64_t d) {\n"
            "  counters_[static_cast<std::size_t>(c)]"
            ".fetch_add(d, std::memory_order_relaxed);\n"
            "}\n"
            "void Forward(Registry& r) {\n"
            "  r.Add(obs::Counter::kFramesIngested, 1);\n"
            "}\n"
        }, ["--rule", "obs-discipline"])
        self.assertEqual(code, mulink_analyze.EXIT_CLEAN)


class BaselineMechanism(AnalyzeHarness):
    DEFECT = {
        "src/core/score.cpp":
        "MULINK_HOT double Score(std::vector<double>& v) {\n"
        "  v.push_back(1.0);\n"
        "  return v.back();\n"
        "}\n"
    }

    def test_write_then_filter_round_trips(self):
        with tempfile.TemporaryDirectory() as tmp:
            make_tree(Path(tmp), self.DEFECT)
            base = Path(tmp) / "baseline.json"
            code, _, _ = self.run_analyze(
                ["--root", tmp, "--backend", "micro",
                 "--write-baseline", str(base)])
            self.assertEqual(code, mulink_analyze.EXIT_FINDINGS)
            payload = json.loads(base.read_text())
            self.assertEqual(len(payload["findings"]), 1)
            # With the baseline applied, the accepted finding is filtered
            # and the run is clean.
            code, out, _ = self.run_analyze(
                ["--root", tmp, "--backend", "micro",
                 "--baseline", str(base)])
            self.assertEqual(code, mulink_analyze.EXIT_CLEAN)
            self.assertIn("0 finding(s)", out)

    def test_new_defect_pierces_old_baseline(self):
        with tempfile.TemporaryDirectory() as tmp:
            make_tree(Path(tmp), self.DEFECT)
            base = Path(tmp) / "baseline.json"
            self.run_analyze(["--root", tmp, "--backend", "micro",
                              "--write-baseline", str(base)])
            make_tree(Path(tmp), {
                "src/core/fresh.cpp":
                "MULINK_HOT void Fresh() { int* p = new int[4]; (void)p; }\n"
            })
            code, out, _ = self.run_analyze(
                ["--root", tmp, "--backend", "micro",
                 "--baseline", str(base)])
            self.assertEqual(code, mulink_analyze.EXIT_FINDINGS)
            self.assertIn("fresh.cpp", out)
            self.assertNotIn("score.cpp", out)

    def test_missing_baseline_exits_2(self):
        code, _, err = self.analyze_tree(
            self.DEFECT, ["--baseline", "nope.json"])
        self.assertEqual(code, mulink_analyze.EXIT_USAGE)
        self.assertIn("no such baseline", err)

    def test_malformed_baseline_exits_2(self):
        with tempfile.TemporaryDirectory() as tmp:
            make_tree(Path(tmp), self.DEFECT)
            bad = Path(tmp) / "bad.json"
            bad.write_text("{not json", encoding="utf-8")
            code, _, err = self.run_analyze(
                ["--root", tmp, "--backend", "micro",
                 "--baseline", str(bad)])
        self.assertEqual(code, mulink_analyze.EXIT_USAGE)
        self.assertIn("malformed baseline", err)

    def test_shipped_baseline_is_empty(self):
        # The checked-in baseline carries zero accepted findings — CI's
        # empty-baseline gate in .github/workflows/ci.yml asserts the same.
        shipped = Path(__file__).resolve().parent / "baseline.json"
        payload = json.loads(shipped.read_text())
        self.assertEqual(payload["findings"], [])


class BackendContract(AnalyzeHarness):
    """cindex soft-skips to micro like clang-tidy; demanding it when it is
    absent is a usage error (exit 2), never a silent pass."""

    def cindex_available(self):
        return mulink_analyze.load_cindex() is not None

    def test_micro_backend_always_runs(self):
        code, out, _ = self.analyze_tree(
            {"src/core/empty.cpp": "void Nothing() {}\n"})
        self.assertEqual(code, mulink_analyze.EXIT_CLEAN)
        self.assertIn("[micro]", out)

    def test_demanded_cindex_without_libclang_exits_2(self):
        if self.cindex_available():
            self.skipTest("clang.cindex is available here")
        with tempfile.TemporaryDirectory() as tmp:
            make_tree(Path(tmp), {"src/core/empty.cpp": "void N() {}\n"})
            code, _, err = self.run_analyze(
                ["--root", tmp, "--backend", "cindex"])
        self.assertEqual(code, mulink_analyze.EXIT_USAGE)
        self.assertIn("unavailable", err)

    def test_require_env_without_libclang_exits_2(self):
        if self.cindex_available():
            self.skipTest("clang.cindex is available here")
        old = os.environ.get("MULINK_REQUIRE_CINDEX")
        os.environ["MULINK_REQUIRE_CINDEX"] = "1"
        try:
            with tempfile.TemporaryDirectory() as tmp:
                make_tree(Path(tmp), {"src/core/empty.cpp": "void N() {}\n"})
                code, _, _ = self.run_analyze(["--root", tmp])
        finally:
            if old is None:
                os.environ.pop("MULINK_REQUIRE_CINDEX", None)
            else:
                os.environ["MULINK_REQUIRE_CINDEX"] = old
        self.assertEqual(code, mulink_analyze.EXIT_USAGE)

    def test_cindex_backend_matches_micro_on_planted_defect(self):
        if not self.cindex_available():
            self.skipTest("clang.cindex unavailable (soft-skip, like "
                          "clang-tidy)")
        code, out, _ = self.analyze_tree({
            "src/core/score.cpp":
            "MULINK_HOT double Score(int n) {\n"
            "  double* p = new double[8];\n"
            "  return p[0] * n;\n"
            "}\n"
        }, ["--backend", "cindex", "--rule", "hot-path-alloc"])
        self.assertEqual(code, mulink_analyze.EXIT_FINDINGS)
        self.assertIn("hot-path-alloc", out)


class CliSurface(AnalyzeHarness):
    def test_rule_filter_runs_only_that_rule(self):
        files = {
            "src/core/both.cpp":
            "MULINK_HOT void Hot() { int* p = new int[4]; (void)p; }\n"
            "double Blend(double a, double b, double c) {\n"
            "  return std::fma(a, b, c);\n"
            "}\n"
        }
        code, out, _ = self.analyze_tree(files, ["--rule", "determinism"])
        self.assertEqual(code, mulink_analyze.EXIT_FINDINGS)
        self.assertIn("fma", out)
        self.assertNotIn("hot-path-alloc", out)

    def test_json_output_is_machine_readable(self):
        code, out, _ = self.analyze_tree({
            "src/core/score.cpp":
            "MULINK_HOT void Hot() { int* p = new int[4]; (void)p; }\n"
        }, ["--json"])
        self.assertEqual(code, mulink_analyze.EXIT_FINDINGS)
        payload = json.loads(out)
        self.assertEqual(payload["backend"], "micro")
        self.assertEqual(len(payload["findings"]), 1)
        finding = payload["findings"][0]
        self.assertEqual(finding["rule"], "hot-path-alloc")
        self.assertEqual(finding["file"], "src/core/score.cpp")

    def test_explicit_file_list_restricts_scan(self):
        files = {
            "src/core/bad.cpp":
            "MULINK_HOT void Hot() { int* p = new int[4]; (void)p; }\n",
            "src/core/good.cpp": "void Fine() {}\n",
        }
        with tempfile.TemporaryDirectory() as tmp:
            make_tree(Path(tmp), files)
            code, _, _ = self.run_analyze(
                ["--root", tmp, "--backend", "micro", "src/core/good.cpp"])
        self.assertEqual(code, mulink_analyze.EXIT_CLEAN)


class RealTree(unittest.TestCase):
    """The gate the TreeIsClean ctest and CI `analyze` job rely on."""

    def test_repository_is_clean(self):
        repo = Path(__file__).resolve().parent.parent.parent
        out, err = io.StringIO(), io.StringIO()
        code = mulink_analyze.run(
            ["--root", str(repo)], stdout=out, stderr=err)
        self.assertEqual(
            code, mulink_analyze.EXIT_CLEAN,
            f"mulink-analyze found defects in the real tree:\n"
            f"{out.getvalue()}{err.getvalue()}")


if __name__ == "__main__":
    unittest.main()
