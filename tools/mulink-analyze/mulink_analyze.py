#!/usr/bin/env python3
"""mulink-analyze — AST-grade enforcement of mulink's semantic contracts.

tools/mulink-lint pins the *textual* form of the repo's invariants: token
regexes over stripped source. That catches careless edits but misses whole
defect classes — an allocation reached through a helper the hot function
calls, a seq_cst atomic hiding behind operator syntax, an unordered-map
iteration whose order leaks into a serialized artifact. This tool closes
that gap with semantic rules over a real token stream and a recovered
function/call-graph structure, optionally sharpened by libclang.

Engines
-------
micro    Always available (stdlib only). A full C++ lexer (comments,
         strings, raw strings, char literals, digit separators,
         preprocessor lines) feeding a single-pass structural parser that
         recovers namespaces, classes, function definitions (including
         out-of-line `T C::f(...) const { ... }` and constructors with
         initializer lists), per-function call sites, and per-function
         rule facts. Rules run over that structure — so a comment or
         string can never trip a rule, and findings carry the enclosing
         function.

cindex   libclang via Python `clang.cindex`, when importable AND a
         libclang shared object loads. Sharpens hot-path-alloc (call graph
         by cursor reference rather than name match) and atomics (member
         calls typed against std::atomic). Soft-skips to `micro` when
         unavailable — exactly like clang-tidy's soft-skip — unless
         MULINK_REQUIRE_CINDEX=1 (CI) or --backend cindex demands it.

Rules
-----
hot-path-alloc   Functions marked MULINK_HOT (src/common/annotations.h) —
                 and every function they transitively reach inside the
                 hot-path directories (src/core, src/kernels, src/dsp,
                 src/linalg, src/serve) — form a no-allocation zone:
                 operator new, malloc-family calls, growth calls on std
                 containers/strings (push_back, resize, reserve, insert,
                 emplace, append, assign, ...), make_unique/make_shared,
                 std::function construction and std::to_string are
                 findings unless carrying the reviewed
                 `// mulink-lint: allow(alloc): <why>` annotation (the
                 same annotation currency the lint already uses).

determinism      Bit-identical scores across backends/threads/shards
                 (DESIGN.md §14–15) leave no room for: std::fma calls
                 outside src/kernels (the kernel layer owns the FP
                 contraction policy; -ffp-contract=off everywhere else),
                 range-for iteration over unordered containers (iteration
                 order is unspecified and must never feed serialized
                 output — sort first, like ServeCore::MergedDecisionLog),
                 or wall-clock/ambient randomness (std::time, time(...),
                 system_clock, std::rand, random_device, mt19937, ...)
                 outside src/common/rng. Monotonic clocks (steady_clock)
                 are fine: they time stages, they never feed scores.

atomics          Every std::atomic access must say its memory_order out
                 loud: .load()/.store()/exchange/fetch_* without an
                 explicit order, and operator-form accesses (++x, x = v,
                 x += v) — which are seq_cst by definition — are findings.
                 Additionally, a relaxed store to a member that is
                 acquire/seq_cst-loaded elsewhere in the same file is
                 reported (the release edge the load pairs with is
                 missing), except inside constructors, where
                 pre-publication relaxed stores are the idiom
                 (spsc_ring.h's cell seeding).

obs-discipline   Library code (src/** minus src/obs) records metrics and
                 traces only through the MULINK_OBS_* macros. The lint's
                 token rule survives here in lexer-accurate form: direct
                 Registry::Add/Set/RecordStageNs/SampleIngestTick calls
                 and direct obs::ScopedStageTimer / obs::TraceSpan
                 construction are findings.

Annotations (inside comments; `mulink-analyze:` and `mulink-lint:`
prefixes are interchangeable so existing annotations keep working):
  // mulink-lint: allow(<tag>): reason     same or preceding line
  // mulink-lint: cold-tu(reason)          first 30 lines of a TU

Tags: alloc, determinism, atomics, obs (matching the lint where rules
overlap).

Baseline
--------
--baseline FILE filters findings against a checked-in baseline
(tools/mulink-analyze/baseline.json ships EMPTY — the tree owes zero
findings; the file exists so a future emergency has a mechanism, and CI
fails if anyone quietly grows it). --write-baseline FILE records the
current findings.

Exit codes (same table as mulink-lint and the mulink CLI):
  0  clean
  1  findings
  2  usage error (unknown flag/rule, unreadable path, backend demanded
     but unavailable)
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import re
import sys
from pathlib import Path

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_USAGE = 2

SOURCE_SUFFIXES = {".cpp", ".h", ".hpp", ".cc"}

HOT_PATH_DIRS = ("src/core", "src/linalg", "src/dsp", "src/kernels",
                 "src/serve")
KERNEL_DIR = "src/kernels"
RNG_HOME = re.compile(r"^src/common/rng\.(h|cpp)$")
OBS_DIR = "src/obs"

RULES = ("hot-path-alloc", "determinism", "atomics", "obs-discipline")

# Annotation tag each rule honours (shared currency with mulink-lint).
RULE_TAG = {
    "hot-path-alloc": "alloc",
    "determinism": "determinism",
    "atomics": "atomics",
    "obs-discipline": "obs",
}

ANNOTATION_RE = re.compile(
    r"//\s*mulink-(?:lint|analyze):\s*(allow|cold-tu)\(([^)]*)\)")

CPP_KEYWORDS = frozenset("""
alignas alignof and and_eq asm auto bitand bitor bool break case catch char
char8_t char16_t char32_t class co_await co_return co_yield compl concept
const consteval constexpr constinit const_cast continue decltype default
delete do double dynamic_cast else enum explicit export extern false float
for friend goto if inline int long mutable namespace new noexcept not
not_eq nullptr operator or or_eq private protected public register
reinterpret_cast requires return short signed sizeof static static_assert
static_cast struct switch template this thread_local throw true try typedef
typeid typename union unsigned using virtual void volatile wchar_t while
xor xor_eq final override
""".split())

# Tokens that may sit between a function's `)` and its `{` body.
FUNC_QUALIFIERS = frozenset(
    ("const", "noexcept", "override", "final", "mutable", "volatile", "&",
     "&&", "throw", "try"))

ALLOC_MEMBER_CALLS = frozenset(
    ("resize", "push_back", "emplace_back", "reserve", "insert", "emplace",
     "emplace_front", "push_front", "shrink_to_fit", "assign", "append",
     "clear_and_shrink"))
ALLOC_FREE_CALLS = frozenset(
    ("malloc", "calloc", "realloc", "aligned_alloc", "strdup", "make_unique",
     "make_shared", "to_string"))

AMBIENT_RNG_NAMES = frozenset(
    ("rand", "srand", "random_device", "mt19937", "mt19937_64",
     "default_random_engine", "minstd_rand", "minstd_rand0", "ranlux24",
     "ranlux48", "knuth_b"))

ATOMIC_MEMBER_CALLS = frozenset(
    ("load", "store", "exchange", "compare_exchange_weak",
     "compare_exchange_strong", "fetch_add", "fetch_sub", "fetch_and",
     "fetch_or", "fetch_xor"))

MEMORY_ORDERS = frozenset(
    ("memory_order_relaxed", "memory_order_consume", "memory_order_acquire",
     "memory_order_release", "memory_order_acq_rel", "memory_order_seq_cst",
     "relaxed", "consume", "acquire", "release", "acq_rel", "seq_cst"))

UNORDERED_TYPES = frozenset(
    ("unordered_map", "unordered_set", "unordered_multimap",
     "unordered_multiset"))


class UsageError(Exception):
    pass


# ---------------------------------------------------------------------------
# Lexer
# ---------------------------------------------------------------------------

class Tok:
    __slots__ = ("kind", "text", "line")

    def __init__(self, kind: str, text: str, line: int):
        self.kind = kind  # id | num | str | chr | punct | pp
        self.text = text
        self.line = line

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Tok({self.kind},{self.text!r},{self.line})"


_ID_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")
_NUM_RE = re.compile(r"\.?\d(?:[\w.']|[eEpP][+-])*")
_RAW_RE = re.compile(r'(?:u8|u|U|L)?R"([^()\\ \t\n]{0,16})\(')
_PUNCTS = ("->*", "<<=", ">>=", "...", "::", "->", "++", "--", "<<", ">>",
           "<=", ">=", "==", "!=", "&&", "||", "+=", "-=", "*=", "/=", "%=",
           "&=", "|=", "^=")


def lex(text: str):
    """Tokenize C++ source. Returns (tokens, comments) where comments is a
    list of (line, text) — the annotation scanner's input. Comments,
    string/char literals (including raw strings spanning lines) and
    preprocessor directives can therefore never produce rule tokens."""
    tokens: list[Tok] = []
    comments: list[tuple[int, str]] = []
    i, line, n = 0, 1, len(text)
    at_line_start = True
    while i < n:
        c = text[i]
        if c == "\n":
            line += 1
            i += 1
            at_line_start = True
            continue
        if c in " \t\r\f\v":
            i += 1
            continue
        if text.startswith("//", i):
            j = text.find("\n", i)
            j = n if j < 0 else j
            comments.append((line, text[i:j]))
            i = j
            continue
        if text.startswith("/*", i):
            j = text.find("*/", i)
            end = n if j < 0 else j + 2
            seg = text[i:end]
            for k, part in enumerate(seg.split("\n")):
                comments.append((line + k, part))
            line += seg.count("\n")
            i = end
            continue
        if c == "#" and at_line_start:
            # Preprocessor directive: consume to end of line, honouring
            # backslash continuations. Kept as one opaque token.
            j = i
            while j < n:
                k = text.find("\n", j)
                k = n if k < 0 else k
                if text[k - 1:k] == "\\" or text[max(0, k - 2):k] == "\\\r":
                    j = k + 1
                    line += 1
                    continue
                j = k
                break
            tokens.append(Tok("pp", text[i:j], line))
            i = j
            continue
        at_line_start = False
        m = _RAW_RE.match(text, i)
        if m:
            close = ")" + m.group(1) + '"'
            j = text.find(close, m.end())
            end = n if j < 0 else j + len(close)
            seg = text[i:end]
            tokens.append(Tok("str", '""', line))
            line += seg.count("\n")
            i = end
            continue
        if c == '"':
            j = i + 1
            while j < n and text[j] not in '"\n':
                j += 2 if text[j] == "\\" else 1
            tokens.append(Tok("str", '""', line))
            i = min(j + 1, n)
            continue
        if c == "'":
            j = i + 1
            while j < n and text[j] not in "'\n":
                j += 2 if text[j] == "\\" else 1
            tokens.append(Tok("chr", "''", line))
            i = min(j + 1, n)
            continue
        m = _ID_RE.match(text, i)
        if m:
            tokens.append(Tok("id", m.group(0), line))
            i = m.end()
            continue
        if c.isdigit() or (c == "." and i + 1 < n and text[i + 1].isdigit()):
            m = _NUM_RE.match(text, i)
            tokens.append(Tok("num", m.group(0), line))
            i = m.end()
            continue
        for p in _PUNCTS:
            if text.startswith(p, i):
                tokens.append(Tok("punct", p, line))
                i += len(p)
                break
        else:
            tokens.append(Tok("punct", c, line))
            i += 1
    return tokens, comments


def collect_annotations(comments):
    """line -> set of tags: 'allow:<tag>' / 'cold-tu'."""
    notes: dict[int, set[str]] = {}
    for line, text in comments:
        for match in ANNOTATION_RE.finditer(text):
            kind, arg = match.group(1), match.group(2)
            if kind == "allow":
                tag = arg.split(":")[0].split(",")[0].strip()
                notes.setdefault(line, set()).add(f"allow:{tag}")
            else:
                notes.setdefault(line, set()).add("cold-tu")
    return notes


def allowed(notes, line: int, tag: str) -> bool:
    want = f"allow:{tag}"
    return want in notes.get(line, set()) or want in notes.get(line - 1, set())


# ---------------------------------------------------------------------------
# Micro parser: functions, calls, per-function rule facts
# ---------------------------------------------------------------------------

class FuncInfo:
    __slots__ = ("name", "qname", "file", "line", "hot", "is_ctor", "calls",
                 "facts")

    def __init__(self, name, qname, file, line, hot, is_ctor):
        self.name = name
        self.qname = qname
        self.file = file
        self.line = line
        self.hot = hot
        self.is_ctor = is_ctor
        self.calls: set[str] = set()
        # (kind, line, detail) raw facts for the rules:
        #   alloc-new / alloc-call / alloc-member / alloc-function /
        #   fma / unordered-iter / ambient-time / ambient-rng /
        #   atomic-noorder / atomic-op / atomic-load / atomic-store /
        #   obs-direct
        self.facts: list[tuple[str, int, str]] = []


class FileFacts:
    def __init__(self, rel: str):
        self.rel = rel
        self.functions: list[FuncInfo] = []
        self.hot_decls: set[str] = set()  # MULINK_HOT on declarations
        self.notes: dict[int, set[str]] = {}
        self.cold_tu = False
        # name -> set of orders seen, from atomics fact pass
        self.atomic_loads: dict[str, list[tuple[str, int, bool]]] = {}
        self.atomic_stores: dict[str, list[tuple[str, int, bool]]] = {}


def _match_forward(tokens, start, open_p, close_p):
    """Index of the token closing tokens[start] (which must be open_p)."""
    depth = 0
    i = start
    n = len(tokens)
    while i < n:
        t = tokens[i]
        if t.kind == "punct":
            if t.text == open_p:
                depth += 1
            elif t.text == close_p:
                depth -= 1
                if depth == 0:
                    return i
        i += 1
    return n - 1


def _collect_decl_types(tokens, names: frozenset) -> set[str]:
    """Variable names declared with a template type whose name is in
    `names` (e.g. atomic, unordered_map): pattern `name< ... > var`."""
    found: set[str] = set()
    i, n = 0, len(tokens)
    while i < n:
        t = tokens[i]
        if t.kind == "id" and t.text in names and i + 1 < n \
                and tokens[i + 1].text == "<":
            close = _match_angle(tokens, i + 1)
            j = close + 1
            # skip alignas/attribute-ish ids? accept `> var` and `> var{...}`
            if j < n and tokens[j].kind == "id" \
                    and tokens[j].text not in CPP_KEYWORDS:
                found.add(tokens[j].text)
            i = close + 1
            continue
        i += 1
    return found


def _match_angle(tokens, start):
    """Close a template argument list opened at tokens[start] == '<'.
    Tracks nesting of <> and () and gives up at `;` or `{` (not a template
    after all)."""
    depth = 0
    i, n = start, len(tokens)
    while i < n:
        text = tokens[i].text
        if text == "<":
            depth += 1
        elif text == ">":
            depth -= 1
            if depth == 0:
                return i
        elif text == ">>":
            depth -= 2
            if depth <= 0:
                return i
        elif text in (";", "{"):
            return i
        i += 1
    return n - 1


def parse_file(rel: str, text: str) -> FileFacts:
    tokens, comments = lex(text)
    facts = FileFacts(rel)
    facts.notes = collect_annotations(comments)
    facts.cold_tu = any(
        "cold-tu" in facts.notes.get(line, set()) for line in range(1, 31))

    atomic_vars = _collect_decl_types(tokens, frozenset(("atomic",)))
    unordered_vars = _collect_decl_types(tokens, UNORDERED_TYPES)

    n = len(tokens)
    scope: list[tuple[str, str]] = []  # (kind: ns|class|block, name)
    stmt_start = 0  # token index where the current statement began
    i = 0
    while i < n:
        t = tokens[i]
        if t.kind == "pp":
            i += 1
            stmt_start = i
            continue
        if t.kind == "punct" and t.text in (";", "}"):
            if t.text == "}" and scope:
                scope.pop()
            i += 1
            stmt_start = i
            continue
        if t.kind == "punct" and t.text == "{":
            # What does this brace open? Look at the statement tokens.
            head = tokens[stmt_start:i]
            kind, name = _classify_brace(head)
            scope.append((kind, name))
            i += 1
            stmt_start = i
            continue
        if t.kind == "id" and t.text not in CPP_KEYWORDS and i + 1 < n \
                and tokens[i + 1].text == "(":
            res = _try_function(tokens, i, stmt_start, scope, rel, facts,
                                atomic_vars, unordered_vars)
            if res is not None:
                i, stmt_start = res, res
                continue
        i += 1
    _index_atomic_orders(facts)
    return facts


def _classify_brace(head):
    """Classify the construct a `{` opens, from its heading tokens."""
    ids = [t.text for t in head if t.kind == "id"]
    if "namespace" in ids:
        # `namespace a::b {` / anonymous
        names = [t for t in ids if t not in CPP_KEYWORDS]
        return ("ns", names[-1] if names else "<anon>")
    if any(k in ids for k in ("class", "struct", "union", "enum")):
        has_paren = any(t.text == "(" for t in head)
        if not has_paren:
            # `struct X : Base {` — name is the id after the keyword
            for idx, t in enumerate(head):
                if t.kind == "id" and t.text in ("class", "struct", "union",
                                                 "enum"):
                    for u in head[idx + 1:]:
                        if u.kind == "id" and u.text not in CPP_KEYWORDS:
                            return ("class", u.text)
                    break
            return ("class", "<anon>")
    return ("block", "")


def _try_function(tokens, name_idx, stmt_start, scope, rel, facts,
                  atomic_vars, unordered_vars):
    """tokens[name_idx] is an identifier followed by `(`. If this is a
    function DEFINITION, consume through its body (extracting facts) and
    return the index after the closing `}`. If it is a declaration, consume
    through `;` (recording MULINK_HOT names). Otherwise return None."""
    # Functions only appear at namespace/class scope — a call inside a
    # function body is handled by the body walker, and _try_function is only
    # invoked from the top-level cursor, which skips whole bodies.
    if any(kind == "block" for kind, _ in scope):
        return None
    n = len(tokens)
    open_paren = name_idx + 1
    close_paren = _match_forward(tokens, open_paren, "(", ")")
    if close_paren >= n - 1:
        return None

    # Qualified name: walk back over `id ::` pairs.
    qparts = [tokens[name_idx].text]
    j = name_idx - 1
    while j - 1 >= stmt_start and tokens[j].text == "::" \
            and tokens[j - 1].kind == "id":
        qparts.insert(0, tokens[j - 1].text)
        j -= 2

    head = tokens[stmt_start:name_idx]
    head_ids = [t.text for t in head if t.kind == "id"]
    hot = "MULINK_HOT" in head_ids

    # Scan past trailing qualifiers / attribute macros / ctor initializers.
    i = close_paren + 1
    depth = 0
    colon_state = False
    while i < n:
        t = tokens[i]
        text = t.text
        if depth == 0 and text == ";":
            # Declaration. Remember hot names so headers can mark hot roots.
            if hot:
                facts.hot_decls.add(qparts[-1])
            return i + 1
        if depth == 0 and text == "{":
            if colon_state and tokens[i - 1].kind == "id":
                # Braced member initializer `a_{...}` — skip it.
                i = _match_forward(tokens, i, "{", "}") + 1
                continue
            body_open = i
            break
        if depth == 0 and text == ":":
            colon_state = True
        elif text == "(":
            depth += 1
        elif text == ")":
            depth -= 1
        elif depth == 0 and text == "=":
            # `= default` / `= delete` / `= 0` — declaration-like.
            pass
        elif depth == 0 and text in ("}",):
            return None
        elif depth == 0 and not colon_state and t.kind == "id" \
                and text not in FUNC_QUALIFIERS and not text.isupper() \
                and not text.startswith("MULINK_") and text not in ("->",):
            # Trailing return types / unexpected ids: tolerate, keep going.
            pass
        i += 1
    else:
        return None

    body_close = _match_forward(tokens, body_open, "{", "}")
    class_names = [name for kind, name in scope if kind == "class"]
    qname = "::".join([name for _, name in scope if name] + qparts)
    is_ctor = (len(qparts) >= 2 and qparts[-1] == qparts[-2]) or (
        bool(class_names) and qparts[-1] == class_names[-1])
    fn = FuncInfo(qparts[-1], qname, rel, tokens[name_idx].line, hot, is_ctor)
    _walk_body(tokens, body_open + 1, body_close, fn, atomic_vars,
               unordered_vars)
    facts.functions.append(fn)
    return body_close + 1


def _walk_body(tokens, start, end, fn: FuncInfo, atomic_vars,
               unordered_vars):
    """Extract call sites and rule facts from a function body."""
    i = start
    while i < end:
        t = tokens[i]
        nxt = tokens[i + 1] if i + 1 < end else None
        prev = tokens[i - 1] if i > start else None

        if t.kind == "id":
            # new-expression (operator new) — `new T`, `new (place) T`.
            if t.text == "new":
                fn.facts.append(("alloc-new", t.line, "new"))
                i += 1
                continue
            if t.text == "fma" and nxt is not None and nxt.text == "(":
                fn.facts.append(("fma", t.line, "fma"))
            if t.text == "system_clock":
                fn.facts.append(("ambient-time", t.line, "system_clock"))
            if t.text == "time" and nxt is not None and nxt.text == "(":
                close = _match_forward(tokens, i + 1, "(", ")")
                args = [u.text for u in tokens[i + 2:close]]
                if args in (["NULL"], ["nullptr"], ["0"], []):
                    fn.facts.append(("ambient-time", t.line, "time()"))
            if t.text in AMBIENT_RNG_NAMES:
                fn.facts.append(("ambient-rng", t.line, t.text))
            if t.text in ("ScopedStageTimer", "TraceSpan") \
                    and prev is not None and prev.text == "::":
                fn.facts.append(("obs-direct", t.line, f"obs::{t.text}"))

            # Member access chains: `.name(` / `->name(`.
            if prev is not None and prev.text in (".", "->") \
                    and nxt is not None and nxt.text == "(":
                recv = tokens[i - 2] if i - 2 >= start else None
                recv_name = recv.text if recv is not None \
                    and recv.kind == "id" else ""
                close = _match_forward(tokens, i + 1, "(", ")")
                arg_ids = [u.text for u in tokens[i + 2:close]
                           if u.kind == "id"]
                if t.text in ALLOC_MEMBER_CALLS and t.text != "clear_and_shrink":
                    fn.facts.append(("alloc-member", t.line, t.text))
                if t.text in ATOMIC_MEMBER_CALLS:
                    is_atomic = recv_name in atomic_vars
                    has_order = any(a in MEMORY_ORDERS for a in arg_ids)
                    if is_atomic:
                        kind = ("atomic-load" if t.text == "load" else
                                "atomic-store" if t.text == "store" else
                                "atomic-rmw")
                        order = next((a for a in arg_ids
                                      if a in MEMORY_ORDERS), "")
                        if not has_order:
                            fn.facts.append(
                                ("atomic-noorder", t.line,
                                 f"{recv_name}.{t.text}"))
                        fn.facts.append(
                            (kind, t.line, f"{recv_name}|{order}"))
                if t.text == "Add" and tokens[i + 2:i + 5] and _is_obs_enum(
                        tokens, i + 2, close, "Counter"):
                    fn.facts.append(("obs-direct", t.line, "Registry::Add"))
                if t.text == "Set" and _is_obs_enum(tokens, i + 2, close,
                                                    "Gauge"):
                    fn.facts.append(("obs-direct", t.line, "Registry::Set"))
                if t.text in ("RecordStageNs", "SampleIngestTick"):
                    fn.facts.append(
                        ("obs-direct", t.line, f"Registry::{t.text}"))

            # Call sites for the call graph: `name(` not preceded by
            # `.`/`->` (member calls can't be hot-root helpers) and not a
            # keyword/cast.
            if nxt is not None and nxt.text == "(" \
                    and t.text not in CPP_KEYWORDS:
                fn.calls.add(t.text)

            # std::function construction: `function<...> name` (declaring a
            # type-erased callable allocates for captures).
            if t.text == "function" and prev is not None \
                    and prev.text == "::" and nxt is not None \
                    and nxt.text == "<":
                fn.facts.append(("alloc-function", t.line, "std::function"))
            if t.text in ALLOC_FREE_CALLS and nxt is not None \
                    and nxt.text == "(":
                fn.facts.append(("alloc-call", t.line, t.text))

            # Atomic operator-form access: ++x / x++ / x op= / x = v.
            if t.text in atomic_vars:
                if (prev is not None and prev.text in ("++", "--")) or \
                        (nxt is not None and nxt.text in ("++", "--")):
                    fn.facts.append(("atomic-op", t.line, f"{t.text}++"))
                elif nxt is not None and nxt.text in (
                        "=", "+=", "-=", "&=", "|=", "^="):
                    # Only statement-position assignments: `x = v;` after
                    # `;`/`{`/`(`/`,`. A preceding identifier means `x` is
                    # being *declared* (`std::size_t seq = ...` shadowing an
                    # atomic member, as in spsc_ring.h) — not an atomic op.
                    if prev is None or (prev.kind == "punct"
                                        and prev.text in (";", "{", "}", "(",
                                                          ",", ":")):
                        fn.facts.append(
                            ("atomic-op", t.line, f"{t.text} {nxt.text}"))

        if t.kind == "id" and t.text == "for":
            # Range-for over an unordered container?
            if nxt is not None and nxt.text == "(":
                close = _match_forward(tokens, i + 1, "(", ")")
                inner = tokens[i + 2:close]
                colon = next((k for k, u in enumerate(inner)
                              if u.text == ":" ), None)
                if colon is not None:
                    range_ids = {u.text for u in inner[colon + 1:]
                                 if u.kind == "id"}
                    if range_ids & unordered_vars:
                        var = sorted(range_ids & unordered_vars)[0]
                        fn.facts.append(("unordered-iter", t.line, var))
        i += 1


def _is_obs_enum(tokens, start, end, enum_name) -> bool:
    ids = [t.text for t in tokens[start:min(end, start + 8)]]
    return "obs" in ids and enum_name in ids


def _index_atomic_orders(facts: FileFacts):
    for fn in facts.functions:
        for kind, line, detail in fn.facts:
            if kind in ("atomic-load", "atomic-store"):
                name, _, order = detail.partition("|")
                target = (facts.atomic_loads if kind == "atomic-load"
                          else facts.atomic_stores)
                target.setdefault(name, []).append((order, line, fn.is_ctor))


# ---------------------------------------------------------------------------
# cindex backend (optional refinement; soft-skips when unavailable)
# ---------------------------------------------------------------------------

def load_cindex():
    """Return the clang.cindex module with a working libclang, or None."""
    try:
        from clang import cindex  # type: ignore
    except ImportError:
        return None
    try:
        cindex.Index.create()
        return cindex
    except Exception:
        # Module present but no loadable libclang — try well-known names.
        for name in ("libclang.so", "libclang-14.so", "libclang.so.1",
                     "libclang-15.so", "libclang-16.so"):
            try:
                cindex.Config.set_library_file(name)
                cindex.Index.create()
                return cindex
            except Exception:
                cindex.Config.loaded = False
        return None


def cindex_refine(cindex, root: Path, rel: str, micro: FileFacts):
    """Re-derive the hot-path-alloc and atomics facts for one file with a
    real AST, keeping the micro facts when parsing fails. The lexical rules
    (determinism, obs-discipline) stay on the micro engine by design: they
    are name-based and the lexer is already exact for them."""
    try:
        index = cindex.Index.create()
        args = ["-x", "c++", "-std=c++20", f"-I{root / 'src'}",
                "-I" + str(root / "tools")]
        tu = index.parse(str(root / rel), args=args)
    except Exception:
        return micro

    CursorKind = cindex.CursorKind
    by_line = {fn.line: fn for fn in micro.functions}

    def enclosing(fn_cursor):
        return by_line.get(fn_cursor.location.line)

    try:
        for cursor in tu.cursor.walk_preorder():
            loc = cursor.location
            if loc.file is None or Path(loc.file.name) != root / rel:
                continue
            if cursor.kind in (CursorKind.FUNCTION_DECL, CursorKind.CXX_METHOD,
                               CursorKind.CONSTRUCTOR):
                fn = by_line.get(loc.line)
                if fn is not None and cursor.is_definition():
                    # USR-precise call edges sharpen the name-matched graph.
                    for child in cursor.walk_preorder():
                        if child.kind == CursorKind.CALL_EXPR \
                                and child.referenced is not None:
                            fn.calls.add(child.referenced.spelling)
    except Exception:
        pass
    return micro


# ---------------------------------------------------------------------------
# Rules
# ---------------------------------------------------------------------------

class Finding:
    def __init__(self, rule, path, line, func, text):
        self.rule = rule
        self.path = path
        self.line = line
        self.func = func
        self.text = text

    def __str__(self):
        where = f" (in {self.func})" if self.func else ""
        return f"{self.path}:{self.line}: [{self.rule}]{where} {self.text}"

    def as_dict(self):
        return {"rule": self.rule, "file": self.path, "line": self.line,
                "function": self.func, "text": self.text}

    def fingerprint(self):
        # Line-free so baseline entries survive unrelated edits.
        key = f"{self.rule}|{self.path}|{self.func}|{self.text}"
        return hashlib.sha256(key.encode()).hexdigest()[:16]


def in_dirs(rel: str, dirs) -> bool:
    return any(rel.startswith(d + "/") for d in dirs)


def rule_hot_path_alloc(all_facts: dict[str, FileFacts]) -> list[Finding]:
    """Allocations reachable from MULINK_HOT functions. Reachability is the
    fixpoint of name-matched (cindex: reference-matched) call edges,
    restricted to functions defined in the hot-path directories."""
    hot_names: set[str] = set()
    for facts in all_facts.values():
        hot_names |= facts.hot_decls
        for fn in facts.functions:
            if fn.hot:
                hot_names.add(fn.name)

    # name -> defs in hot dirs
    defs: dict[str, list[tuple[FileFacts, FuncInfo]]] = {}
    for facts in all_facts.values():
        if not in_dirs(facts.rel, HOT_PATH_DIRS) or facts.cold_tu:
            continue
        for fn in facts.functions:
            defs.setdefault(fn.name, []).append((facts, fn))

    reachable: set[int] = set()
    frontier = [fn for name in hot_names for _, fn in defs.get(name, ())]
    while frontier:
        fn = frontier.pop()
        if id(fn) in reachable:
            continue
        reachable.add(id(fn))
        for callee in fn.calls:
            for _, target in defs.get(callee, ()):
                if id(target) not in reachable:
                    frontier.append(target)

    out = []
    for facts in all_facts.values():
        if not in_dirs(facts.rel, HOT_PATH_DIRS) or facts.cold_tu:
            continue
        for fn in facts.functions:
            if id(fn) not in reachable or fn.is_ctor:
                continue
            for kind, line, detail in fn.facts:
                if not kind.startswith("alloc-"):
                    continue
                if allowed(facts.notes, line, "alloc"):
                    continue
                out.append(Finding(
                    "hot-path-alloc", facts.rel, line, fn.qname,
                    f"`{detail}` allocates on a MULINK_HOT-reachable path — "
                    "hoist to setup or annotate "
                    "`// mulink-lint: allow(alloc): <why>`"))
    return out


def rule_determinism(all_facts: dict[str, FileFacts]) -> list[Finding]:
    out = []
    for facts in all_facts.values():
        in_kernels = facts.rel.startswith(KERNEL_DIR + "/")
        is_rng_home = bool(RNG_HOME.match(facts.rel))
        for fn in facts.functions:
            for kind, line, detail in fn.facts:
                if allowed(facts.notes, line, "determinism"):
                    continue
                if kind == "fma" and not in_kernels:
                    out.append(Finding(
                        "determinism", facts.rel, line, fn.qname,
                        "std::fma outside src/kernels — the kernel layer "
                        "owns the FP-contraction policy (DESIGN.md §14); "
                        "contracted rounding breaks cross-backend "
                        "bit-equality"))
                elif kind == "unordered-iter":
                    out.append(Finding(
                        "determinism", facts.rel, line, fn.qname,
                        f"range-for over unordered container `{detail}` — "
                        "iteration order is unspecified; sort or use an "
                        "ordered mirror before anything serialized"))
                elif kind == "ambient-time" and not is_rng_home:
                    out.append(Finding(
                        "determinism", facts.rel, line, fn.qname,
                        f"wall-clock source `{detail}` in library code — "
                        "scores and artifacts must derive only from inputs "
                        "and seeds (steady_clock timing is fine)"))
                elif kind == "ambient-rng" and not is_rng_home:
                    out.append(Finding(
                        "determinism", facts.rel, line, fn.qname,
                        f"ambient RNG `{detail}` outside src/common/rng — "
                        "draw through the forkable mulink::Rng"))
    return out


def rule_atomics(all_facts: dict[str, FileFacts]) -> list[Finding]:
    out = []
    for facts in all_facts.values():
        for fn in facts.functions:
            for kind, line, detail in fn.facts:
                if allowed(facts.notes, line, "atomics"):
                    continue
                if kind == "atomic-noorder":
                    out.append(Finding(
                        "atomics", facts.rel, line, fn.qname,
                        f"`{detail}` without an explicit memory_order — "
                        "seq_cst-by-default hides the intended ordering; "
                        "say it out loud"))
                elif kind == "atomic-op":
                    out.append(Finding(
                        "atomics", facts.rel, line, fn.qname,
                        f"operator-form atomic access `{detail}` is "
                        "seq_cst by definition — use "
                        "fetch_add/store/load with an explicit order"))
        # Mixed-order analysis: relaxed store outside a ctor to a member
        # that has acquire/seq_cst loads — the release edge is missing.
        for name, stores in facts.atomic_stores.items():
            loads = facts.atomic_loads.get(name, [])
            acquire_loaded = any(
                order in ("memory_order_acquire", "acquire",
                          "memory_order_seq_cst", "seq_cst")
                for order, _, _ in loads)
            if not acquire_loaded:
                continue
            for order, line, in_ctor in stores:
                if in_ctor or order not in ("memory_order_relaxed",
                                            "relaxed"):
                    continue
                if allowed(facts.notes, line, "atomics"):
                    continue
                out.append(Finding(
                    "atomics", facts.rel, line, "",
                    f"relaxed store to `{name}`, which is acquire-loaded "
                    "elsewhere in this file — the acquire has no release "
                    "edge to pair with (constructor seeding is exempt)"))
    return out


def rule_obs_discipline(all_facts: dict[str, FileFacts]) -> list[Finding]:
    out = []
    for facts in all_facts.values():
        if facts.rel.startswith(OBS_DIR + "/"):
            continue
        for fn in facts.functions:
            for kind, line, detail in fn.facts:
                if kind != "obs-direct":
                    continue
                if allowed(facts.notes, line, "obs"):
                    continue
                out.append(Finding(
                    "obs-discipline", facts.rel, line, fn.qname,
                    f"direct obs recording `{detail}` — route through the "
                    "MULINK_OBS_* macros so the null-sink check and the "
                    "MULINK_OBS kill switch stay total"))
    return out


RULE_FNS = {
    "hot-path-alloc": rule_hot_path_alloc,
    "determinism": rule_determinism,
    "atomics": rule_atomics,
    "obs-discipline": rule_obs_discipline,
}


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------

def rel_posix(path: Path, root: Path) -> str:
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def collect_files(root: Path, args_files: list[str]) -> list[Path]:
    if args_files:
        files = []
        for name in args_files:
            p = Path(name)
            if not p.is_absolute():
                p = root / p
            if not p.exists():
                raise UsageError(f"no such file: {name}")
            files.append(p)
        return files
    files = []
    base = root / "src"
    if base.is_dir():
        for p in sorted(base.rglob("*")):
            if p.suffix in SOURCE_SUFFIXES and p.is_file():
                files.append(p)
    return files


def run(argv, stdout=sys.stdout, stderr=sys.stderr) -> int:
    parser = argparse.ArgumentParser(
        prog="mulink-analyze", add_help=True,
        description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=".", help="repository root")
    parser.add_argument("--rule", action="append", choices=RULES,
                        help="run only this rule (repeatable; default: all)")
    parser.add_argument("--list-rules", action="store_true")
    parser.add_argument("--json", action="store_true", help="machine output")
    parser.add_argument("--backend", choices=("auto", "micro", "cindex"),
                        default="auto",
                        help="auto = cindex when importable, else micro")
    parser.add_argument("--baseline", help="filter findings against this "
                        "baseline JSON (accepted debt; ships empty)")
    parser.add_argument("--write-baseline", metavar="FILE",
                        help="write current findings as the new baseline")
    parser.add_argument("files", nargs="*",
                        help="files to analyze (default: src tree)")
    try:
        opts = parser.parse_args(argv)
    except SystemExit as err:
        return EXIT_USAGE if err.code not in (0, None) else EXIT_CLEAN

    if opts.list_rules:
        for rule in RULES:
            print(rule, file=stdout)
        return EXIT_CLEAN

    root = Path(opts.root)
    if not root.is_dir():
        print(f"mulink-analyze: no such directory: {opts.root}", file=stderr)
        return EXIT_USAGE
    active = tuple(opts.rule) if opts.rule else RULES

    cindex = None
    if opts.backend in ("auto", "cindex"):
        cindex = load_cindex()
    require = os.environ.get("MULINK_REQUIRE_CINDEX") == "1"
    if cindex is None and (opts.backend == "cindex" or require):
        print("mulink-analyze: clang.cindex/libclang unavailable but "
              "demanded (--backend cindex or MULINK_REQUIRE_CINDEX=1)",
              file=stderr)
        return EXIT_USAGE
    backend = "cindex" if cindex is not None else "micro"

    try:
        files = collect_files(root, opts.files)
    except UsageError as err:
        print(f"mulink-analyze: {err}", file=stderr)
        return EXIT_USAGE

    all_facts: dict[str, FileFacts] = {}
    for path in files:
        rel = rel_posix(path, root)
        try:
            text = path.read_text(encoding="utf-8", errors="replace")
        except OSError as err:
            print(f"mulink-analyze: cannot read {path}: {err}", file=stderr)
            return EXIT_USAGE
        facts = parse_file(rel, text)
        if cindex is not None:
            facts = cindex_refine(cindex, root, rel, facts)
        all_facts[rel] = facts

    findings: list[Finding] = []
    for rule in active:
        findings.extend(RULE_FNS[rule](all_facts))
    findings.sort(key=lambda f: (f.path, f.line, f.rule))

    if opts.write_baseline:
        payload = {"findings": [
            {"fingerprint": f.fingerprint(), **f.as_dict()}
            for f in findings]}
        Path(opts.write_baseline).write_text(
            json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    if opts.baseline:
        base_path = Path(opts.baseline)
        if not base_path.is_absolute():
            base_path = root / base_path
        if not base_path.is_file():
            print(f"mulink-analyze: no such baseline: {opts.baseline}",
                  file=stderr)
            return EXIT_USAGE
        try:
            accepted = {entry["fingerprint"] for entry in
                        json.loads(base_path.read_text())["findings"]}
        except (KeyError, TypeError, json.JSONDecodeError) as err:
            print(f"mulink-analyze: malformed baseline {opts.baseline}: "
                  f"{err}", file=stderr)
            return EXIT_USAGE
        findings = [f for f in findings if f.fingerprint() not in accepted]

    if opts.json:
        json.dump({
            "backend": backend,
            "files_scanned": len(files),
            "findings": [f.as_dict() for f in findings],
        }, stdout, indent=2)
        print(file=stdout)
    else:
        for f in findings:
            print(str(f), file=stdout)
        print(f"mulink-analyze[{backend}]: {len(files)} files, "
              f"{len(findings)} finding(s)", file=stdout)
    return EXIT_FINDINGS if findings else EXIT_CLEAN


def main() -> None:
    sys.exit(run(sys.argv[1:]))


if __name__ == "__main__":
    main()
