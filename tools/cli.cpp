// mulink command-line tool: simulate, inspect, and analyze CSI sessions.
//
//   mulink simulate --scenario classroom --packets 500 --out empty.mlnk
//   mulink simulate --scenario classroom --human 3.0,4.5 --out person.mlnk
//   mulink info session.mlnk
//   mulink export-csv session.mlnk session.csv
//   mulink detect --calibration empty.mlnk --session person.mlnk
//                 [--scheme combined] [--window 25] [--guard]
//                 [--metrics] [--metrics-json] [--guard-json] [--adaptive]
//   mulink campaign [--threads n] [--metrics] [--trace-json trace.json]
//   mulink spectrum --calibration empty.mlnk
//   mulink breath --session sleeper.mlnk --rate 50
//   mulink serve --links 1000 --shards 4 [--deterministic]
//                [--decision-log decisions.log]
//
// Files use the binary format of nic/csi_io.h, so sessions converted from
// real Intel 5300 CSI Tool traces drop straight in.
#include "cli.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <span>
#include <string>

#include "common/error.h"
#include "common/rng.h"
#include "core/breath.h"
#include "core/detector.h"
#include "core/engine.h"
#include "core/music.h"
#include "core/sanitize.h"
#include "dsp/stats.h"
#include "experiments/format.h"
#include "experiments/parallel_runner.h"
#include "experiments/scenario.h"
#include "nic/csi_io.h"
#include "obs/export.h"
#include "serve/serve.h"

using namespace mulink;
namespace ex = mulink::experiments;

namespace {

struct Args {
  std::string command;
  std::vector<std::string> positional;
  std::map<std::string, std::string> options;
};

// Per-command argument contract: which options take a value, which are bare
// flags, and the usage line echoed with every parse error. Anything outside
// the contract is a PreconditionError (exit code 2), never a silent ignore.
struct CommandSpec {
  const char* name;
  const char* usage;
  std::vector<std::string> valued;
  std::vector<std::string> flags;
  std::size_t min_positional = 0;
  std::size_t max_positional = 0;
};

const std::vector<CommandSpec>& Specs() {
  static const std::vector<CommandSpec> specs = {
      {"simulate",
       "simulate --scenario <name> --packets <n> --out <file.mlnk>\n"
       "         [--human x,y] [--breathing-bpm n] [--seed n] [--calm]\n"
       "         [--fault-drop p] [--fault-reorder p] [--fault-corrupt p]\n"
       "         [--fault-dead-antenna m] [--fault-seed n]",
       {"scenario", "packets", "out", "seed", "human", "breathing-bpm",
        "fault-drop", "fault-reorder", "fault-corrupt", "fault-dead-antenna",
        "fault-seed"},
       {"calm"}},
      {"info", "info <file.mlnk>", {}, {}, 1, 1},
      {"export-csv", "export-csv <in.mlnk> <out.csv>", {}, {}, 2, 2},
      {"detect",
       "detect --calibration <file> --session <file>\n"
       "       [--scheme baseline|subcarrier|combined|variance] [--window n]\n"
       "       [--guard] [--guard-json] [--metrics] [--metrics-json]\n"
       "       [--adaptive]",
       {"calibration", "session", "scheme", "window"},
       {"guard", "guard-json", "metrics", "metrics-json", "adaptive"}},
      {"campaign",
       "campaign [--threads n] [--seed n] [--window n]\n"
       "         [--packets-per-location n] [--calibration-packets n]\n"
       "         [--empty-packets n] [--metrics] [--metrics-json]\n"
       "         [--trace-json <file>]",
       {"threads", "seed", "window", "packets-per-location",
        "calibration-packets", "empty-packets", "trace-json"},
       {"metrics", "metrics-json"}},
      {"spectrum", "spectrum --calibration <file>", {"calibration"}, {}},
      {"breath", "breath --session <file> [--rate hz]", {"session", "rate"},
       {}},
      {"serve",
       "serve [--links n] [--shards n] [--packets n]\n"
       "      [--scheme baseline|subcarrier|combined|variance] [--window n]\n"
       "      [--hop n] [--queue n]\n"
       "      [--policy block|drop-oldest|reject-newest] [--max-resident n]\n"
       "      [--deterministic] [--decision-log <file>] [--seed n]\n"
       "      [--metrics-json]",
       {"links", "shards", "packets", "scheme", "window", "hop", "queue",
        "policy", "max-resident", "decision-log", "seed"},
       {"deterministic", "metrics-json"}},
  };
  return specs;
}

bool Contains(const std::vector<std::string>& haystack,
              const std::string& needle) {
  return std::find(haystack.begin(), haystack.end(), needle) != haystack.end();
}

[[noreturn]] void UsageError(const CommandSpec& spec,
                             const std::string& message) {
  throw PreconditionError(message + "\nusage: mulink " + spec.usage);
}

// Strict tokenizer against the command's contract: valued options consume
// exactly the next token (which may be negative / start with '-'), flags
// never do, and anything unrecognized fails loudly.
Args Parse(const std::vector<std::string>& argv, const CommandSpec& spec) {
  Args args;
  args.command = spec.name;
  for (std::size_t i = 1; i < argv.size(); ++i) {
    const std::string& token = argv[i];
    if (token.rfind("--", 0) == 0) {
      const std::string key = token.substr(2);
      if (Contains(spec.flags, key)) {
        args.options[key] = "true";
      } else if (Contains(spec.valued, key)) {
        if (i + 1 >= argv.size()) {
          UsageError(spec, "option '--" + key + "' needs a value");
        }
        args.options[key] = argv[++i];
      } else {
        UsageError(spec, "unknown option '--" + key + "' for '" +
                             spec.name + "'");
      }
    } else {
      args.positional.push_back(token);
    }
  }
  if (args.positional.size() < spec.min_positional ||
      args.positional.size() > spec.max_positional) {
    UsageError(spec, std::string("'") + spec.name + "' expects " +
                         std::to_string(spec.min_positional) +
                         (spec.min_positional == spec.max_positional
                              ? ""
                              : ".." + std::to_string(spec.max_positional)) +
                         " positional argument(s)");
  }
  return args;
}

std::string Option(const Args& args, const std::string& key,
                   const std::string& fallback) {
  const auto it = args.options.find(key);
  return it == args.options.end() ? fallback : it->second;
}

// Strict numeric parsers: the whole token must parse, or the option is
// malformed (exit code 2). std::sto* would happily accept "25abc".
double ParseDouble(const std::string& key, const std::string& text) {
  const char* begin = text.c_str();
  char* end = nullptr;
  const double value = std::strtod(begin, &end);
  if (text.empty() || end != begin + text.size()) {
    throw PreconditionError("option '--" + key + "' expects a number, got '" +
                            text + "'");
  }
  return value;
}

std::uint64_t ParseU64(const std::string& key, const std::string& text) {
  const double value = ParseDouble(key, text);
  if (value < 0.0 || value != static_cast<double>(
                                  static_cast<std::uint64_t>(value))) {
    throw PreconditionError("option '--" + key +
                            "' expects a non-negative integer, got '" + text +
                            "'");
  }
  return static_cast<std::uint64_t>(value);
}

int ParseInt(const std::string& key, const std::string& text) {
  const double value = ParseDouble(key, text);
  if (value != static_cast<double>(static_cast<int>(value))) {
    throw PreconditionError("option '--" + key +
                            "' expects an integer, got '" + text + "'");
  }
  return static_cast<int>(value);
}

ex::LinkCase ScenarioByName(const std::string& name) {
  if (name == "classroom") return ex::MakeClassroomLink();
  if (name == "wall") return ex::MakeShortWallLink();
  if (name == "through-wall") return ex::MakeThroughWallLink();
  const auto cases = ex::MakePaperCases();
  for (std::size_t i = 0; i < cases.size(); ++i) {
    if (name == "case" + std::to_string(i + 1)) return cases[i];
  }
  throw PreconditionError(
      "unknown scenario '" + name +
      "' (try: classroom, wall, through-wall, case1..case5)");
}

core::DetectionScheme SchemeByName(const std::string& name) {
  if (name == "baseline") return core::DetectionScheme::kBaseline;
  if (name == "subcarrier") return core::DetectionScheme::kSubcarrierWeighting;
  if (name == "combined") {
    return core::DetectionScheme::kSubcarrierAndPathWeighting;
  }
  if (name == "variance") return core::DetectionScheme::kVarianceMobile;
  throw PreconditionError("unknown scheme '" + name +
                          "' (baseline|subcarrier|combined|variance)");
}

geometry::Vec2 ParsePoint(const std::string& text) {
  const auto comma = text.find(',');
  if (comma == std::string::npos) {
    throw PreconditionError("expected x,y but got '" + text + "'");
  }
  return {ParseDouble("human", text.substr(0, comma)),
          ParseDouble("human", text.substr(comma + 1))};
}

int Simulate(const Args& args, std::ostream& out) {
  const auto lc = ScenarioByName(Option(args, "scenario", "classroom"));
  const auto packets =
      static_cast<std::size_t>(ParseU64("packets",
                                        Option(args, "packets", "500")));
  const auto out_path = Option(args, "out", "");
  if (out_path.empty()) {
    throw PreconditionError("--out <file.mlnk> is required");
  }
  Rng rng(ParseU64("seed", Option(args, "seed", "1")));

  auto sim_config = ex::DefaultSimConfig();
  // NIC fault processes (nic/fault_injection.h). Any --fault-* option turns
  // the injector on; it draws from its own RNG stream, so the channel
  // realization matches the clean capture packet for packet.
  auto& faults = sim_config.faults;
  if (args.options.count("fault-drop")) {
    faults.drop_prob = ParseDouble("fault-drop", args.options.at("fault-drop"));
  }
  if (args.options.count("fault-reorder")) {
    faults.reorder_prob =
        ParseDouble("fault-reorder", args.options.at("fault-reorder"));
  }
  if (args.options.count("fault-corrupt")) {
    faults.corrupt_prob =
        ParseDouble("fault-corrupt", args.options.at("fault-corrupt"));
  }
  if (args.options.count("fault-dead-antenna")) {
    faults.dead_antenna =
        ParseInt("fault-dead-antenna", args.options.at("fault-dead-antenna"));
  }
  faults.enabled = faults.drop_prob > 0.0 || faults.reorder_prob > 0.0 ||
                   faults.corrupt_prob > 0.0 || faults.dead_antenna >= 0;
  if (faults.enabled) {
    faults.seed = ParseU64("fault-seed", Option(args, "fault-seed", "1"));
  }
  if (args.options.count("calm")) {
    // Bedroom-style conditions for respiration captures: no co-channel
    // bursts, minimal drift and sway.
    sim_config.interference_entry_prob = 0.0;
    sim_config.slow_gain_drift_db = 0.05;
    sim_config.human_sway_sigma_m = 0.001;
    sim_config.background_jitter_m = 0.001;
  }
  auto sim = ex::MakeSimulator(lc, sim_config);
  std::optional<propagation::HumanBody> human;
  if (args.options.count("human")) {
    propagation::HumanBody body;
    body.position = ParsePoint(args.options.at("human"));
    if (args.options.count("breathing-bpm")) {
      body.breathing_rate_hz =
          ParseDouble("breathing-bpm", args.options.at("breathing-bpm")) /
          60.0;
      body.breathing_amplitude_m = 0.006;
    }
    human = body;
  }
  const auto session = sim.CaptureSession(packets, human, rng);
  nic::WriteCsiSession(out_path, session);
  out << "wrote " << session.size() << " packets (" << lc.name << ", "
      << (human.has_value() ? "human present" : "empty room") << ") to "
      << out_path << "\n";
  return 0;
}

int Info(const Args& args, std::ostream& out) {
  const auto session = nic::ReadCsiSession(args.positional[0]);
  const auto& first = session.front();
  out << "packets:      " << session.size() << "\n"
      << "antennas:     " << first.NumAntennas() << "\n"
      << "subcarriers:  " << first.NumSubcarriers() << "\n"
      << "duration:     "
      << ex::Fmt(session.back().timestamp_s - first.timestamp_s, 2) << " s\n";
  std::vector<double> rssi;
  for (const auto& packet : session) rssi.push_back(packet.rssi_db);
  out << "rssi (dB):    median " << ex::Fmt(dsp::Median(rssi), 1) << ", p5 "
      << ex::Fmt(dsp::Quantile(rssi, 0.05), 1) << ", p95 "
      << ex::Fmt(dsp::Quantile(rssi, 0.95), 1) << "\n";
  return 0;
}

int ExportCsv(const Args& args, std::ostream& out) {
  const auto session = nic::ReadCsiSession(args.positional[0]);
  nic::ExportCsiCsv(args.positional[1], session);
  out << "exported " << session.size() << " packets to " << args.positional[1]
      << "\n";
  return 0;
}

int Detect(const Args& args, std::ostream& out) {
  const auto calibration_path = Option(args, "calibration", "");
  const auto session_path = Option(args, "session", "");
  if (calibration_path.empty() || session_path.empty()) {
    throw PreconditionError(
        "--calibration <file> and --session <file> are required");
  }
  const bool metrics_table = args.options.count("metrics") > 0;
  const bool metrics_json = args.options.count("metrics-json") > 0;
  const bool guard_json = args.options.count("guard-json") > 0;
  // With --guard (or --guard-json, which implies it) the session is read
  // tolerantly: corrupt (non-finite) frames reach the frame guard, which
  // quarantines them with a diagnosis instead of the loader rejecting the
  // whole file. Calibration must be clean either way.
  const bool guard = args.options.count("guard") > 0 || guard_json;

  // Validate every option before touching the filesystem, so a malformed
  // invocation is always exit code 2 even when the files are bad too.
  core::DetectorConfig config;
  config.scheme = SchemeByName(Option(args, "scheme", "combined"));
  config.window_packets = static_cast<std::size_t>(
      ParseU64("window", Option(args, "window", "25")));

  const auto calibration = nic::ReadCsiSession(calibration_path);
  const auto session = nic::ReadCsiSession(
      session_path,
      guard ? nic::CsiReadMode::kTolerant : nic::CsiReadMode::kStrict);

  const auto band = wifi::BandPlan::Intel5300Channel11();
  const wifi::UniformLinearArray array(calibration.front().NumAntennas(),
                                       kWavelength / 2.0, kPi / 2.0);
  auto detector = core::Detector::Calibrate(calibration, band, array, config);

  // Threshold from the calibration session's own windows.
  std::vector<std::vector<wifi::CsiPacket>> empty_windows;
  for (std::size_t start = 0;
       start + config.window_packets <= calibration.size();
       start += config.window_packets) {
    empty_windows.emplace_back(
        calibration.begin() + static_cast<std::ptrdiff_t>(start),
        calibration.begin() +
            static_cast<std::ptrdiff_t>(start + config.window_packets));
  }
  detector.CalibrateThreshold(empty_windows);
  out << "scheme " << core::ToString(config.scheme) << ", threshold "
      << ex::Fmt(detector.threshold(), 4) << "\n";

  // Batch the whole session through the sensing engine: one decision per
  // non-overlapping window, scored on persistent per-link scratch.
  const bool adaptive = args.options.count("adaptive") > 0;
  core::StreamingConfig stream;
  stream.window_packets = config.window_packets;
  stream.hop_packets = config.window_packets;
  stream.use_hmm = false;
  stream.guard_enabled = guard;
  stream.calibration.enabled = adaptive;
  // The calibrator's quiet-score prior comes from the calibration session's
  // own window scores (the same windows the threshold was fitted on).
  std::vector<double> empty_scores;
  if (adaptive) {
    core::DetectorScratch scratch;
    for (const auto& window : empty_windows) {
      empty_scores.push_back(
          detector.Score(std::span<const wifi::CsiPacket>(window), scratch));
    }
  }
  core::SensingEngine engine;
  engine.AddLink(std::move(detector), empty_scores, stream);
  const auto& batch =
      engine.ProcessBatch(std::span<const wifi::CsiPacket>(session));
  for (std::size_t i = 0; i < batch.decisions.size(); ++i) {
    const auto& decision = batch.decisions[i];
    out << "window " << i << "  t="
        << ex::Fmt(static_cast<double>(i * config.window_packets) / 50.0, 1)
        << "s  score " << ex::Fmt(decision.score, 4) << "  "
        << (decision.occupied ? "PRESENT" : "-")
        << (decision.degraded ? "  [degraded]" : "") << "\n";
  }
  if (guard && !guard_json) {
    const nic::LinkHealth health = engine.Health(0);
    out << "link health:  " << nic::ToString(nic::Status(health)) << "\n"
        << "  frames:     " << health.received << " received, "
        << health.accepted << " accepted, " << health.repaired
        << " repaired, " << health.quarantined << " quarantined, "
        << health.missing << " missing\n";
    for (std::size_t f = 0; f < nic::kNumFrameFaults; ++f) {
      const auto fault = static_cast<nic::FrameFault>(1u << f);
      if (health.fault_counts[f] > 0) {
        out << "  fault:      " << nic::ToString(fault) << " x"
            << health.fault_counts[f] << "\n";
      }
    }
    if (health.dead_antenna_mask != 0) {
      out << "  dead mask:  0x" << std::hex << health.dead_antenna_mask
          << std::dec << "\n";
    }
    if (health.degraded_decisions > 0) {
      out << "  degraded:   " << health.degraded_decisions
          << " decisions on the fallback statistic\n";
    }
    if (health.profile_drift) {
      out << "  WATCHDOG:   static profile drift detected — "
             "recalibration due\n";
    }
  }
  if (adaptive) {
    const nic::LinkHealth health = engine.Health(0);
    out << "calibration:  " << nic::ToString(health.calibration_state) << ", "
        << health.quiet_windows << " quiet windows, " << health.profile_swaps
        << " swaps";
    if (health.profile_swaps > 0) {
      out << ", threshold " << ex::Fmt(health.adaptive_threshold, 4);
    }
    out << "\n";
  }
  if (guard_json) {
    obs::WriteLinkHealthJson(out, engine.Health(0));
    out << "\n";
  }
  if (metrics_table || metrics_json) {
    const obs::Registry totals = engine.AggregateMetrics();
    if (metrics_table) obs::WriteMetricsTable(out, totals);
    if (metrics_json) {
      obs::WriteMetricsJson(out, totals);
      out << "\n";
    }
  }
  return 0;
}

int Campaign(const Args& args, std::ostream& out) {
  ex::CampaignConfig config;
  config.seed = ParseU64("seed", Option(args, "seed", "7"));
  config.window_packets = static_cast<std::size_t>(
      ParseU64("window", Option(args, "window", "25")));
  config.packets_per_location = static_cast<std::size_t>(ParseU64(
      "packets-per-location", Option(args, "packets-per-location", "150")));
  config.calibration_packets = static_cast<std::size_t>(ParseU64(
      "calibration-packets", Option(args, "calibration-packets", "200")));
  config.empty_packets = static_cast<std::size_t>(
      ParseU64("empty-packets", Option(args, "empty-packets", "150")));
  const auto threads = static_cast<std::size_t>(
      ParseU64("threads", Option(args, "threads", "1")));
  const auto trace_path = Option(args, "trace-json", "");
  config.collect_trace = !trace_path.empty();

  const ex::ParallelCampaignRunner runner(threads);
  const auto result = runner.RunPaper(config);

  for (const auto& scheme : result.schemes) {
    out << core::ToString(scheme.scheme) << ": AUC "
        << ex::Fmt(scheme.Roc().Auc(), 4) << "  (" << scheme.positives.size()
        << " positive / " << scheme.negatives.size()
        << " negative windows)\n";
  }
  if (!trace_path.empty()) {
    std::ofstream trace_out(trace_path);
    if (!trace_out) {
      throw Error("campaign: cannot write trace file '" + trace_path + "'");
    }
    obs::WriteChromeTrace(trace_out,
                          std::span<const obs::TraceEvent>(result.trace));
    out << "wrote " << result.trace.size() << " trace events to "
        << trace_path << "\n";
  }
  if (args.options.count("metrics") > 0) {
    obs::WriteMetricsTable(out, result.metrics);
  }
  if (args.options.count("metrics-json") > 0) {
    obs::WriteMetricsJson(out, result.metrics);
    out << "\n";
  }
  return 0;
}

int Spectrum(const Args& args, std::ostream& out) {
  const auto calibration_path = Option(args, "calibration", "");
  if (calibration_path.empty()) {
    throw PreconditionError("--calibration <file> is required");
  }
  const auto calibration = nic::ReadCsiSession(calibration_path);
  const auto band = wifi::BandPlan::Intel5300Channel11();
  const wifi::UniformLinearArray array(calibration.front().NumAntennas(),
                                       kWavelength / 2.0, kPi / 2.0);
  const auto clean = core::SanitizePhase(calibration, band);
  const auto spectrum = core::ComputeMusicSpectrum(clean, array, band);
  const double peak = dsp::Max(spectrum.power);
  for (std::size_t i = 0; i < spectrum.theta_deg.size(); i += 5) {
    const double db =
        10.0 * std::log10(std::max(spectrum.power[i] / peak, 1e-9));
    const int bars = std::max(0, static_cast<int>(40.0 + db));
    out << ex::Fmt(spectrum.theta_deg[i], 0) << "\t"
        << std::string(static_cast<std::size_t>(bars), '#') << "\n";
  }
  out << "peaks:";
  for (double angle : spectrum.PeakAngles(3)) {
    out << " " << ex::Fmt(angle, 1) << "deg";
  }
  out << "\n";
  return 0;
}

int Breath(const Args& args, std::ostream& out) {
  const auto session_path = Option(args, "session", "");
  if (session_path.empty()) {
    throw PreconditionError("--session <file> is required");
  }
  const auto session = nic::ReadCsiSession(session_path);
  const double rate = ParseDouble("rate", Option(args, "rate", "50"));
  const auto estimate = core::EstimateBreathing(session, rate);
  out << "respiration: " << ex::Fmt(estimate.rate_hz * 60.0, 1)
      << " breaths/min (confidence " << ex::Fmt(estimate.confidence, 1)
      << ", "
      << (estimate.confidence > 3.0 ? "tracking" : "no clear breather")
      << ")\n";
  return 0;
}

serve::BackPressure PolicyByName(const std::string& name) {
  if (name == "block") return serve::BackPressure::kBlock;
  if (name == "drop-oldest") return serve::BackPressure::kDropOldest;
  if (name == "reject-newest") return serve::BackPressure::kRejectNewest;
  throw PreconditionError("unknown policy '" + name +
                          "' (block|drop-oldest|reject-newest)");
}

int Serve(const Args& args, std::ostream& out) {
  const auto num_links = static_cast<std::size_t>(
      ParseU64("links", Option(args, "links", "32")));
  const auto num_shards = static_cast<std::size_t>(
      ParseU64("shards", Option(args, "shards", "1")));
  const auto packets_per_link = static_cast<std::size_t>(
      ParseU64("packets", Option(args, "packets", "120")));
  if (num_links == 0 || packets_per_link == 0) {
    throw PreconditionError("--links and --packets must be >= 1");
  }
  core::DetectorConfig config;
  config.scheme = SchemeByName(Option(args, "scheme", "combined"));
  config.window_packets = static_cast<std::size_t>(
      ParseU64("window", Option(args, "window", "25")));
  const auto hop = static_cast<std::size_t>(
      ParseU64("hop", Option(args, "hop", "1")));

  serve::ServeConfig scfg;
  scfg.num_shards = num_shards;
  scfg.queue_capacity = static_cast<std::size_t>(
      ParseU64("queue", Option(args, "queue", "1024")));
  scfg.policy = PolicyByName(Option(args, "policy", "drop-oldest"));
  scfg.deterministic = args.options.count("deterministic") > 0;
  scfg.max_resident_per_shard = static_cast<std::size_t>(
      ParseU64("max-resident", Option(args, "max-resident", "0")));
  const auto log_path = Option(args, "decision-log", "");
  scfg.collect_decision_log = !log_path.empty();
  scfg.stream.window_packets = config.window_packets;
  scfg.stream.hop_packets = hop;
  scfg.stream.use_hmm = false;

  // One channel-config profile calibrated from a simulated empty capture;
  // every fleet link shares its immutable detector and scores through the
  // shard's shared scratch.
  Rng rng(ParseU64("seed", Option(args, "seed", "7")));
  const auto lc = ex::MakeClassroomLink();
  auto sim = ex::MakeSimulator(lc);
  const auto calibration = sim.CaptureSession(400, std::nullopt, rng);
  const auto band = wifi::BandPlan::Intel5300Channel11();
  const wifi::UniformLinearArray array(calibration.front().NumAntennas(),
                                       kWavelength / 2.0, kPi / 2.0);
  auto detector = core::Detector::Calibrate(calibration, band, array, config);
  std::vector<std::vector<wifi::CsiPacket>> empty_windows;
  for (std::size_t start = 0;
       start + config.window_packets <= calibration.size();
       start += config.window_packets) {
    empty_windows.emplace_back(
        calibration.begin() + static_cast<std::ptrdiff_t>(start),
        calibration.begin() +
            static_cast<std::ptrdiff_t>(start + config.window_packets));
  }
  detector.CalibrateThreshold(empty_windows);
  std::vector<double> empty_scores;
  {
    core::DetectorScratch scratch;
    for (const auto& window : empty_windows) {
      empty_scores.push_back(
          detector.Score(std::span<const wifi::CsiPacket>(window), scratch));
    }
  }
  const auto shared =
      std::make_shared<const core::Detector>(std::move(detector));

  serve::ServeCore core(scfg);
  const auto profile = core.RegisterProfile(shared, empty_scores);
  core.Start();

  // Per-link RNG streams forked in link order on this thread, so every
  // link's frame sequence is invariant under shard count — the determinism
  // contract's precondition.
  std::vector<Rng> link_rngs;
  link_rngs.reserve(num_links);
  for (std::size_t l = 0; l < num_links; ++l) link_rngs.push_back(rng.Fork());

  const auto start_time = std::chrono::steady_clock::now();
  for (std::size_t p = 0; p < packets_per_link; ++p) {
    for (std::size_t l = 0; l < num_links; ++l) {
      core.Submit(static_cast<std::uint64_t>(l), profile,
                  sim.CapturePacket(std::nullopt, link_rngs[l]));
    }
  }
  core.Drain();
  const auto elapsed = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - start_time)
                           .count();
  core.Stop();

  const auto stats = core.Stats();
  std::uint64_t routed = 0, dropped = 0, rejected = 0, decisions = 0;
  std::uint64_t admitted = 0, evicted = 0;
  for (const auto& s : stats) {
    routed += s.frames_routed;
    dropped += s.frames_dropped;
    rejected += s.frames_rejected;
    decisions += s.decisions;
    admitted += s.links_admitted;
    evicted += s.links_evicted;
  }
  out << "serve: " << num_links << " links over " << stats.size()
      << " shard(s), policy "
      << serve::ToString(scfg.deterministic ? serve::BackPressure::kBlock
                                            : scfg.policy)
      << (scfg.deterministic ? " (deterministic)" : "") << "\n"
      << "  frames:    " << routed << " routed, " << dropped << " dropped, "
      << rejected << " rejected\n"
      << "  links:     " << admitted << " admitted, " << evicted
      << " evicted\n"
      << "  decisions: " << decisions << " ("
      << ex::Fmt(elapsed > 0.0 ? static_cast<double>(decisions) / elapsed
                               : 0.0,
                 0)
      << " decisions/s)\n";
  for (std::size_t i = 0; i < stats.size(); ++i) {
    out << "  shard " << i << ":   " << stats[i].frames_processed
        << " frames, " << stats[i].decisions << " decisions, "
        << stats[i].resident_links << " resident, max queue depth "
        << stats[i].max_depth << "\n";
  }

  if (!log_path.empty()) {
    // Hexfloat serialization so bit-identity across shard counts can be
    // checked with a byte compare of the files.
    std::ofstream log(log_path);
    if (!log) {
      throw Error("cannot write decision log '" + log_path + "'");
    }
    log << std::hexfloat;
    for (const auto& record : core.MergedDecisionLog()) {
      log << record.link_id << " " << record.decision.score << " "
          << (record.decision.occupied ? 1 : 0) << " "
          << record.decision.posterior << " "
          << (record.decision.degraded ? 1 : 0) << "\n";
    }
    out << "  log:       wrote decision log to " << log_path << "\n";
  }
  if (args.options.count("metrics-json") > 0) {
    obs::WriteMetricsJson(out, core.AggregateMetrics());
    out << "\n";
  }
  return 0;
}

void Usage(std::ostream& out) {
  out << "mulink — multipath link characterization toolkit\n\ncommands:\n";
  for (const auto& spec : Specs()) {
    out << "  " << spec.usage << "\n";
  }
  out << "\n"
         "exit codes: 0 ok, 1 runtime error, 2 bad usage/input,\n"
         "            3 numerical failure, 4 internal invariant violation,\n"
         "            5 unexpected exception\n";
}

}  // namespace

namespace mulink::tools {

int RunCli(const std::vector<std::string>& argv, std::ostream& out,
           std::ostream& err) {
  // Each tier of the mulink error hierarchy maps to its own exit code so
  // scripts can tell bad input (2) from numerical trouble (3) from library
  // bugs (4) without parsing stderr.
  try {
    const std::string command = argv.empty() ? "" : argv[0];
    if (command.empty()) {
      Usage(out);
      return 0;
    }
    for (const auto& spec : Specs()) {
      if (command != spec.name) continue;
      const Args args = Parse(argv, spec);
      if (command == "simulate") return Simulate(args, out);
      if (command == "info") return Info(args, out);
      if (command == "export-csv") return ExportCsv(args, out);
      if (command == "detect") return Detect(args, out);
      if (command == "campaign") return Campaign(args, out);
      if (command == "spectrum") return Spectrum(args, out);
      if (command == "breath") return Breath(args, out);
      if (command == "serve") return Serve(args, out);
    }
    throw PreconditionError("unknown command '" + command +
                            "' (run 'mulink' for usage)");
  } catch (const PreconditionError& e) {
    err << "error: " << e.what() << "\n";
    return 2;
  } catch (const NumericalError& e) {
    err << "error: " << e.what() << "\n";
    return 3;
  } catch (const InvariantError& e) {
    err << "internal error: " << e.what() << "\n";
    return 4;
  } catch (const Error& e) {
    err << "error: " << e.what() << "\n";
    return 1;
  } catch (const std::exception& e) {
    err << "unexpected error: " << e.what() << "\n";
    return 5;
  }
}

}  // namespace mulink::tools
