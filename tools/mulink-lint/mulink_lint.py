#!/usr/bin/env python3
"""mulink-lint — static enforcement of mulink's hot-path contracts.

The engine's headline guarantees (DESIGN.md §12) are behavioural: an
allocation-free per-decision hot path, deterministic private RNG streams,
silent library code, and observability recording that compiles out with the
MULINK_OBS kill switch. Runtime tests exercise those properties on the
inputs they happen to run; this lint makes the *textual* form of each
contract a CI failure, so a careless edit cannot silently reintroduce a
heap allocation or an ambient RNG that the tests never see.

Rules
-----
hot-alloc   Heap-allocation tokens (`new`, `malloc`, `resize`, `push_back`,
            `emplace_back`, `reserve`, `make_unique`, `make_shared`, ...)
            inside the hot-path TUs (src/core, src/linalg, src/dsp,
            src/kernels) must
            carry an explicit `// mulink-lint: allow(alloc): <why>`
            annotation on the same or the preceding line. The annotation
            is a reviewed claim that the allocation is setup-path or
            capacity-reserved, not a per-decision cost. Offline-analysis
            TUs opt out with `// mulink-lint: cold-tu(<why>)` near the top.

rng         `std::rand`, `srand`, `std::random_device`, `mt19937` and
            friends, and time-seeded RNGs are forbidden everywhere except
            src/common/rng.* — every stochastic draw must flow through the
            explicitly seeded, forkable mulink::Rng so campaigns stay
            reproducible bit-for-bit across thread counts.

stdout      Library code (src/**) may not write to stdout (`std::cout`,
            `printf`, `puts`); presentation belongs to tools/, examples/
            and bench/. Serializers that take an std::ostream& are fine —
            the caller chooses the sink.

obs-macro   Library code records observability data only through the
            MULINK_OBS_* macros (obs/metrics.h, obs/trace.h) — never by
            calling Registry::Add/Set/RecordStageNs or constructing
            ScopedStageTimer/TraceSpan directly. The macros guarantee the
            null-sink check and keep the MULINK_OBS kill switch total.

intrinsics  SIMD intrinsics (<immintrin.h>/<x86intrin.h> includes, _mm*_*
            calls, __m128/__m256/__m512 types) may appear only in
            src/kernels TUs. The kernel layer is the single place where
            vector code lives, behind runtime dispatch with a scalar twin,
            so the scalar/AVX2 parity tests cover every vectorized path.
            Escape hatch: `// mulink-lint: allow(intrinsics): <why>`.

Annotations (all inside comments, so the compiler never sees them):
  // mulink-lint: allow(<rule-tag>): reason     suppress one finding, on the
                                                same or the preceding line
  // mulink-lint: cold-tu(reason)               opt a src/core|linalg|dsp TU
                                                out of hot-alloc (first 30
                                                lines of the file)

Exit codes (pinned by mulink_lint_test.py, same table as the mulink CLI):
  0  clean
  1  violations found
  2  usage error (unknown flag/rule, unreadable path)
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path

EXIT_CLEAN = 0
EXIT_VIOLATIONS = 1
EXIT_USAGE = 2

SOURCE_SUFFIXES = {".cpp", ".h", ".hpp", ".cc"}

# Directories whose TUs form the per-decision hot path (rule hot-alloc).
HOT_PATH_DIRS = ("src/core", "src/linalg", "src/dsp", "src/kernels",
                 "src/serve")

# The one blessed home for SIMD vector code (rule intrinsics).
KERNEL_DIR = "src/kernels"

# Directories holding library code (rules stdout / obs-macro). tools/,
# examples/ and bench/ are presentation layers and may print.
LIBRARY_DIRS = ("src",)

# The one blessed home for raw generators (rule rng).
RNG_HOME = re.compile(r"^src/common/rng\.(h|cpp)$")

ANNOTATION_RE = re.compile(r"//\s*mulink-lint:\s*(allow|cold-tu)\(([^)]*)\)")

ALLOC_TOKEN_RE = re.compile(
    r"\bnew\b(?!\s*\()"  # placement-new over scratch is still `new(`-free
    r"|\bnew\s*\("
    r"|\b(?:malloc|calloc|realloc|aligned_alloc|strdup)\s*\("
    r"|\.\s*(?:resize|push_back|emplace_back|reserve|insert|emplace|"
    r"shrink_to_fit|assign|append)\s*\("
    r"|->\s*(?:resize|push_back|emplace_back|reserve)\s*\("
    r"|\bmake_unique\b|\bmake_shared\b"
)

RNG_TOKEN_RE = re.compile(
    r"\bstd::rand\b|\bsrand\s*\(|\brand\s*\(\s*\)"
    r"|\brandom_device\b|\bmt19937(?:_64)?\b|\bdefault_random_engine\b"
    r"|\bminstd_rand0?\b|\branlux(?:24|48)\b|\bknuth_b\b"
    r"|\btime\s*\(\s*(?:NULL|nullptr|0)\s*\)"
)

STDOUT_TOKEN_RE = re.compile(
    r"\bstd::cout\b|\bprintf\s*\(|\bputs\s*\(|\bfputs?\s*\(\s*[^,]+,\s*stdout"
    r"|\bfprintf\s*\(\s*stdout\b"
)

OBS_DIRECT_RE = re.compile(
    r"(?:->|\.)\s*Add\s*\(\s*(?:::mulink::)?obs::Counter::"
    r"|(?:->|\.)\s*Set\s*\(\s*(?:::mulink::)?obs::Gauge::"
    r"|(?:->|\.)\s*RecordStageNs\s*\("
    r"|(?:->|\.)\s*SampleIngestTick\s*\("
    r"|\bobs::ScopedStageTimer\b|\bobs::TraceSpan\b"
)

INTRINSICS_TOKEN_RE = re.compile(
    r"#\s*include\s*<(?:immintrin|x86intrin)\.h>"
    r"|\b_mm\d*_\w+\s*\("
    r"|\b__m(?:128|256|512)[di]?\b"
)

RULES = ("hot-alloc", "rng", "stdout", "obs-macro", "intrinsics")


class Violation:
    def __init__(self, rule: str, path: str, line: int, text: str):
        self.rule = rule
        self.path = path
        self.line = line
        self.text = text

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.text.strip()}"

    def as_dict(self) -> dict:
        return {
            "rule": self.rule,
            "file": self.path,
            "line": self.line,
            "text": self.text.strip(),
        }


_RAW_STRING_OPEN_RE = re.compile(r'(?:u8|u|U|L)?R"([^()\\ \t]{0,16})\(')


def strip_code(lines: list[str]) -> list[str]:
    """Return lines with string literals and comments blanked out, so token
    regexes only ever match real code. Handles // and /* */ comments,
    double-quoted strings, and raw strings — including R"delim(...)delim"
    literals spanning lines, whose bodies used to leak into the token
    stream and trip rules on the embedded text (usage strings mentioning
    `push_back(` produced hot-alloc violations)."""
    stripped: list[str] = []
    in_block_comment = False
    raw_delim: str | None = None  # inside R"delim( ... when not None
    for line in lines:
        out = []
        i = 0
        n = len(line)
        while i < n:
            if raw_delim is not None:
                close = line.find(")" + raw_delim + '"', i)
                if close < 0:
                    i = n
                else:
                    i = close + len(raw_delim) + 2
                    raw_delim = None
                continue
            if in_block_comment:
                end = line.find("*/", i)
                if end < 0:
                    i = n
                else:
                    in_block_comment = False
                    i = end + 2
                continue
            ch = line[i]
            nxt = line[i + 1] if i + 1 < n else ""
            if ch == "/" and nxt == "/":
                break  # rest of line is a comment
            if ch == "/" and nxt == "*":
                in_block_comment = True
                i += 2
                continue
            if ch in 'RuUL' and (i == 0 or not (line[i - 1].isalnum()
                                                or line[i - 1] == "_")):
                m = _RAW_STRING_OPEN_RE.match(line, i)
                if m:
                    raw_delim = m.group(1)
                    i = m.end()
                    continue  # the raw-string branch consumes to the close
            if ch == '"':
                # Skip the string literal, honouring escapes.
                i += 1
                while i < n and line[i] != '"':
                    i += 2 if line[i] == "\\" else 1
                i += 1
                continue
            if ch == "'":
                i += 1
                while i < n and line[i] != "'":
                    i += 2 if line[i] == "\\" else 1
                i += 1
                continue
            out.append(ch)
            i += 1
        stripped.append("".join(out))
    return stripped


def annotations(lines: list[str]) -> dict[int, set[str]]:
    """Map 0-based line index -> set of annotation tags on that line."""
    found: dict[int, set[str]] = {}
    for idx, line in enumerate(lines):
        for match in ANNOTATION_RE.finditer(line):
            kind, arg = match.group(1), match.group(2)
            if kind == "allow":
                # allow(alloc): reason / allow(rng) ...; tag is the first word
                tag = arg.split(":")[0].split(",")[0].strip()
                found.setdefault(idx, set()).add(f"allow:{tag}")
            elif kind == "cold-tu":
                found.setdefault(idx, set()).add("cold-tu")
    return found


def allowed(notes: dict[int, set[str]], idx: int, tag: str) -> bool:
    """An allow annotation counts on the flagged line or the line above."""
    want = f"allow:{tag}"
    return want in notes.get(idx, set()) or want in notes.get(idx - 1, set())


def rel_posix(path: Path, root: Path) -> str:
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def lint_file(path: Path, root: Path, active_rules: set[str]) -> list[Violation]:
    rel = rel_posix(path, root)
    try:
        raw = path.read_text(encoding="utf-8", errors="replace").splitlines()
    except OSError as err:
        raise UsageError(f"cannot read {path}: {err}") from err
    notes = annotations(raw)
    code = strip_code(raw)
    out: list[Violation] = []

    in_hot_dir = any(rel.startswith(d + "/") for d in HOT_PATH_DIRS)
    in_kernels = rel.startswith(KERNEL_DIR + "/")
    cold_tu = any("cold-tu" in notes.get(i, set()) for i in range(min(len(raw), 30)))
    in_library = any(rel.startswith(d + "/") for d in LIBRARY_DIRS)
    in_obs = rel.startswith("src/obs/")
    is_rng_home = bool(RNG_HOME.match(rel))

    for idx, line in enumerate(code):
        lineno = idx + 1
        if (
            "hot-alloc" in active_rules
            and in_hot_dir
            and not cold_tu
            and ALLOC_TOKEN_RE.search(line)
            and not allowed(notes, idx, "alloc")
        ):
            out.append(
                Violation(
                    "hot-alloc",
                    rel,
                    lineno,
                    "allocation token in hot-path TU without "
                    "`// mulink-lint: allow(alloc): <why>`",
                )
            )
        if (
            "rng" in active_rules
            and not is_rng_home
            and RNG_TOKEN_RE.search(line)
            and not allowed(notes, idx, "rng")
        ):
            out.append(
                Violation(
                    "rng",
                    rel,
                    lineno,
                    "raw/ambient RNG outside src/common/rng — draw through "
                    "mulink::Rng so runs stay reproducible",
                )
            )
        if (
            "stdout" in active_rules
            and in_library
            and STDOUT_TOKEN_RE.search(line)
            and not allowed(notes, idx, "stdout")
        ):
            out.append(
                Violation(
                    "stdout",
                    rel,
                    lineno,
                    "stdout write in library code — return data or take an "
                    "std::ostream&; printing belongs to tools/examples/bench",
                )
            )
        if (
            "obs-macro" in active_rules
            and in_library
            and not in_obs
            and OBS_DIRECT_RE.search(line)
            and not allowed(notes, idx, "obs")
        ):
            out.append(
                Violation(
                    "obs-macro",
                    rel,
                    lineno,
                    "direct obs recording call — route through the "
                    "MULINK_OBS_* macros (obs/metrics.h, obs/trace.h)",
                )
            )
        if (
            "intrinsics" in active_rules
            and not in_kernels
            and INTRINSICS_TOKEN_RE.search(line)
            and not allowed(notes, idx, "intrinsics")
        ):
            out.append(
                Violation(
                    "intrinsics",
                    rel,
                    lineno,
                    "SIMD intrinsics outside src/kernels — the kernel layer "
                    "owns vector code so scalar/AVX2 parity stays testable",
                )
            )
    return out


class UsageError(Exception):
    pass


def collect_files(root: Path, args_files: list[str]) -> list[Path]:
    if args_files:
        files = []
        for name in args_files:
            p = Path(name)
            if not p.is_absolute():
                p = root / p
            if not p.exists():
                raise UsageError(f"no such file: {name}")
            files.append(p)
        return files
    files = []
    for top in ("src", "tools", "examples", "bench"):
        base = root / top
        if not base.is_dir():
            continue
        for p in sorted(base.rglob("*")):
            if p.suffix in SOURCE_SUFFIXES and p.is_file():
                if "mulink-lint" in p.parts:
                    continue  # the lint's own fixtures are not the tree
                files.append(p)
    return files


def run(argv: list[str], stdout=sys.stdout, stderr=sys.stderr) -> int:
    parser = argparse.ArgumentParser(
        prog="mulink-lint", add_help=True, description=__doc__.splitlines()[0]
    )
    parser.add_argument("--root", default=".", help="repository root")
    parser.add_argument(
        "--rule",
        action="append",
        choices=RULES,
        help="run only this rule (repeatable; default: all)",
    )
    parser.add_argument("--list-rules", action="store_true")
    parser.add_argument("--json", action="store_true", help="machine output")
    parser.add_argument("files", nargs="*", help="files to lint (default: tree)")
    try:
        opts = parser.parse_args(argv)
    except SystemExit as err:
        # argparse exits 2 on bad usage and 0 on --help; preserve both.
        return EXIT_USAGE if err.code not in (0, None) else EXIT_CLEAN

    if opts.list_rules:
        for rule in RULES:
            print(rule, file=stdout)
        return EXIT_CLEAN

    root = Path(opts.root)
    if not root.is_dir():
        print(f"mulink-lint: no such directory: {opts.root}", file=stderr)
        return EXIT_USAGE
    active = set(opts.rule) if opts.rule else set(RULES)

    try:
        files = collect_files(root, opts.files)
        violations: list[Violation] = []
        for path in files:
            violations.extend(lint_file(path, root, active))
    except UsageError as err:
        print(f"mulink-lint: {err}", file=stderr)
        return EXIT_USAGE

    if opts.json:
        json.dump(
            {
                "files_scanned": len(files),
                "violations": [v.as_dict() for v in violations],
            },
            stdout,
            indent=2,
        )
        print(file=stdout)
    else:
        for v in violations:
            print(str(v), file=stdout)
        print(
            f"mulink-lint: {len(files)} files, {len(violations)} violation(s)",
            file=stdout,
        )
    return EXIT_VIOLATIONS if violations else EXIT_CLEAN


def main() -> None:
    sys.exit(run(sys.argv[1:]))


if __name__ == "__main__":
    main()
