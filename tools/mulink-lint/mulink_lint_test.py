#!/usr/bin/env python3
"""Unit tests for mulink-lint, run under ctest (MulinkLint.UnitTests).

Everything runs in-process through mulink_lint.run() — the same entry the
CLI uses — so the exit-code contract (0 clean / 1 violations / 2 usage
error, the table tools/cli.h also follows) is pinned exactly where it is
implemented, not approximated through a subprocess.

The acceptance demo lives here too: planting a bare `new` / `push_back` in
a hot-path TU makes the hot-alloc rule fail, planting an ambient RNG or a
raw std::cout in library code fails the respective rule, and an unannotated
direct Registry call fails obs-macro.
"""

import io
import json
import os
import sys
import tempfile
import unittest
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
import mulink_lint  # noqa: E402


def make_tree(root: Path, files: dict[str, str]) -> None:
    for rel, content in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(content, encoding="utf-8")


class LintHarness(unittest.TestCase):
    def run_lint(self, argv):
        out, err = io.StringIO(), io.StringIO()
        code = mulink_lint.run(argv, stdout=out, stderr=err)
        return code, out.getvalue(), err.getvalue()

    def lint_tree(self, files: dict[str, str], extra_argv=()):
        with tempfile.TemporaryDirectory() as tmp:
            make_tree(Path(tmp), files)
            return self.run_lint(["--root", tmp, *extra_argv])


CLEAN_HOT_TU = """\
#include "core/thing.h"
void Warm(std::vector<double>& scratch) {
  for (auto& v : scratch) v = 0.0;  // no allocation tokens at all
}
"""


class ExitCodeContract(LintHarness):
    """Exit codes 0/1/2, matching the mulink CLI table (tools/cli.h)."""

    def test_clean_tree_exits_0(self):
        code, out, _ = self.lint_tree({"src/core/thing.cpp": CLEAN_HOT_TU})
        self.assertEqual(code, mulink_lint.EXIT_CLEAN)
        self.assertIn("0 violation(s)", out)

    def test_violations_exit_1(self):
        code, _, _ = self.lint_tree(
            {"src/core/thing.cpp": "int* p = new int[8];\n"}
        )
        self.assertEqual(code, mulink_lint.EXIT_VIOLATIONS)

    def test_unknown_flag_exits_2(self):
        code, _, _ = self.run_lint(["--no-such-flag"])
        self.assertEqual(code, mulink_lint.EXIT_USAGE)

    def test_unknown_rule_exits_2(self):
        code, _, _ = self.run_lint(["--rule", "no-such-rule"])
        self.assertEqual(code, mulink_lint.EXIT_USAGE)

    def test_missing_root_exits_2(self):
        code, _, err = self.run_lint(["--root", "/no/such/dir/anywhere"])
        self.assertEqual(code, mulink_lint.EXIT_USAGE)
        self.assertIn("no such directory", err)

    def test_missing_file_argument_exits_2(self):
        with tempfile.TemporaryDirectory() as tmp:
            code, _, err = self.run_lint(["--root", tmp, "ghost.cpp"])
        self.assertEqual(code, mulink_lint.EXIT_USAGE)
        self.assertIn("no such file", err)

    def test_list_rules_exits_0(self):
        code, out, _ = self.run_lint(["--list-rules"])
        self.assertEqual(code, mulink_lint.EXIT_CLEAN)
        for rule in mulink_lint.RULES:
            self.assertIn(rule, out)


class HotAllocRule(LintHarness):
    """Planting an allocation in a hot-path TU fails CI (acceptance demo)."""

    def test_planted_new_in_hot_tu_fails(self):
        code, out, _ = self.lint_tree(
            {
                "src/core/detector.cpp": (
                    "void Score() {\n"
                    "  double* tmp = new double[64];\n"
                    "  delete[] tmp;\n"
                    "}\n"
                )
            }
        )
        self.assertEqual(code, mulink_lint.EXIT_VIOLATIONS)
        self.assertIn("[hot-alloc]", out)
        self.assertIn("src/core/detector.cpp:2", out)

    def test_planted_push_back_in_linalg_fails(self):
        code, out, _ = self.lint_tree(
            {"src/linalg/solve.cpp": "void F(V& v) { v.push_back(1.0); }\n"}
        )
        self.assertEqual(code, mulink_lint.EXIT_VIOLATIONS)
        self.assertIn("[hot-alloc]", out)

    def test_annotated_allocation_is_allowed(self):
        code, _, _ = self.lint_tree(
            {
                "src/dsp/fft.cpp": (
                    "void Setup(V& v, int n) {\n"
                    "  // mulink-lint: allow(alloc): ctor, setup path\n"
                    "  v.reserve(n);\n"
                    "  v.resize(n);  // mulink-lint: allow(alloc): warm\n"
                    "}\n"
                )
            }
        )
        self.assertEqual(code, mulink_lint.EXIT_CLEAN)

    def test_cold_tu_marker_opts_out(self):
        code, _, _ = self.lint_tree(
            {
                "src/core/roc.cpp": (
                    "// mulink-lint: cold-tu(offline analysis)\n"
                    "void Build(V& v) { v.push_back(1); }\n"
                )
            }
        )
        self.assertEqual(code, mulink_lint.EXIT_CLEAN)

    def test_alloc_outside_hot_dirs_is_fine(self):
        code, _, _ = self.lint_tree(
            {"src/wifi/csi.cpp": "void F(V& v) { v.push_back(1); }\n"}
        )
        self.assertEqual(code, mulink_lint.EXIT_CLEAN)

    def test_tokens_in_comments_and_strings_ignored(self):
        code, _, _ = self.lint_tree(
            {
                "src/core/detector.cpp": (
                    "// the newest window wins; we never resize( here\n"
                    "/* malloc( would be bad */\n"
                    'const char* kDoc = "call v.push_back(x) upstream";\n'
                )
            }
        )
        self.assertEqual(code, mulink_lint.EXIT_CLEAN)

    def test_multiline_raw_string_is_opaque(self):
        # Regression: R"(...)"" bodies spanning lines used to leak into the
        # token stream, so a usage string mentioning push_back( or an
        # intrinsic produced hot-alloc / intrinsics violations.
        code, _, _ = self.lint_tree(
            {
                "src/core/usage.cpp": (
                    "const char* kUsage = R\"(usage:\n"
                    "  push_back( frames onto the ring; new int[4] per slab\n"
                    "  _mm256_add_pd( is kernel-layer only\n"
                    ")\";\n"
                    "void After(V& v) { (void)v; }\n"
                )
            }
        )
        self.assertEqual(code, mulink_lint.EXIT_CLEAN)

    def test_delimited_raw_string_is_opaque(self):
        code, _, _ = self.lint_tree(
            {
                "src/core/usage.cpp": (
                    "const char* kJson = R\"json({\n"
                    "  \"hint\": \"resize( the pool)\"\n"
                    "})json\";\n"
                )
            }
        )
        self.assertEqual(code, mulink_lint.EXIT_CLEAN)

    def test_code_after_raw_string_close_still_linted(self):
        # The stripper must resume lexing right after )": real violations
        # on the same line as the close are still caught.
        code, out, _ = self.lint_tree(
            {
                "src/core/usage.cpp": (
                    "const char* kDoc = R\"(doc\n"
                    "text)\"; int* p = new int[4];\n"
                )
            }
        )
        self.assertEqual(code, mulink_lint.EXIT_VIOLATIONS)
        self.assertIn("hot-alloc", out)


class RngRule(LintHarness):
    def test_ambient_rng_fails_anywhere(self):
        for rel in ("src/nic/sim.cpp", "bench/micro.cpp", "tools/x.cpp"):
            code, out, _ = self.lint_tree(
                {rel: "#include <random>\nstd::mt19937 gen(std::rand());\n"}
            )
            self.assertEqual(code, mulink_lint.EXIT_VIOLATIONS, rel)
            self.assertIn("[rng]", out)

    def test_time_seeding_fails(self):
        code, out, _ = self.lint_tree(
            {"src/nic/sim.cpp": "auto seed = time(nullptr);\n"}
        )
        self.assertEqual(code, mulink_lint.EXIT_VIOLATIONS)
        self.assertIn("[rng]", out)

    def test_rng_home_is_exempt(self):
        code, _, _ = self.lint_tree(
            {
                "src/common/rng.cpp": "// PCG32, no std::mt19937 needed\n"
                "std::uint32_t x = std::random_device{}();\n"
            }
        )
        self.assertEqual(code, mulink_lint.EXIT_CLEAN)


class StdoutRule(LintHarness):
    def test_cout_in_library_fails(self):
        code, out, _ = self.lint_tree(
            {"src/obs/export.cpp": 'void P() { std::cout << "hi"; }\n'}
        )
        self.assertEqual(code, mulink_lint.EXIT_VIOLATIONS)
        self.assertIn("[stdout]", out)

    def test_printf_in_library_fails(self):
        code, _, _ = self.lint_tree(
            {"src/core/engine.cpp": 'void P() { printf("x"); }\n'}
        )
        self.assertEqual(code, mulink_lint.EXIT_VIOLATIONS)

    def test_tools_examples_bench_may_print(self):
        code, _, _ = self.lint_tree(
            {
                "tools/cli.cpp": 'void P() { std::cout << "ok"; }\n',
                "examples/quickstart.cpp": 'void Q() { printf("ok"); }\n',
                "bench/micro.cpp": 'void R() { puts("ok"); }\n',
            }
        )
        self.assertEqual(code, mulink_lint.EXIT_CLEAN)


class ObsMacroRule(LintHarness):
    def test_direct_registry_call_in_library_fails(self):
        code, out, _ = self.lint_tree(
            {
                "src/core/engine.cpp": (
                    "void F(R* m) { m->Add(obs::Counter::kDecisions); }\n"
                )
            }
        )
        self.assertEqual(code, mulink_lint.EXIT_VIOLATIONS)
        self.assertIn("[obs-macro]", out)

    def test_direct_timer_construction_fails(self):
        code, _, _ = self.lint_tree(
            {
                "src/core/engine.cpp": (
                    "void F(R* m) {\n"
                    "  obs::ScopedStageTimer t(m, obs::Stage::kScore);\n"
                    "}\n"
                )
            }
        )
        self.assertEqual(code, mulink_lint.EXIT_VIOLATIONS)

    def test_macro_call_is_clean(self):
        code, _, _ = self.lint_tree(
            {
                "src/core/engine.cpp": (
                    "void F(R* m) { MULINK_OBS_COUNT(m, kDecisions); }\n"
                )
            }
        )
        self.assertEqual(code, mulink_lint.EXIT_CLEAN)

    def test_obs_subsystem_itself_is_exempt(self):
        code, _, _ = self.lint_tree(
            {
                "src/obs/metrics.cpp": (
                    "void Registry::MergeFrom(const Registry& s) {\n"
                    "  RecordStageNs(stage, ns);  // within obs itself\n"
                    "}\n"
                )
            }
        )
        self.assertEqual(code, mulink_lint.EXIT_CLEAN)


class IntrinsicsRule(LintHarness):
    """Vector code lives only in src/kernels, behind the dispatch layer."""

    def test_immintrin_include_outside_kernels_fails(self):
        code, out, _ = self.lint_tree(
            {"src/core/detector.cpp": "#include <immintrin.h>\n"}
        )
        self.assertEqual(code, mulink_lint.EXIT_VIOLATIONS)
        self.assertIn("[intrinsics]", out)
        self.assertIn("src/core/detector.cpp:1", out)

    def test_mm_call_and_vector_type_fail_outside_kernels(self):
        for rel in ("src/dsp/filter.cpp", "bench/micro.cpp", "tools/x.cpp"):
            code, out, _ = self.lint_tree(
                {
                    rel: (
                        "void F(double* p) {\n"
                        "  __m256d v = _mm256_loadu_pd(p);\n"
                        "  _mm256_storeu_pd(p, v);\n"
                        "}\n"
                    )
                }
            )
            self.assertEqual(code, mulink_lint.EXIT_VIOLATIONS, rel)
            self.assertIn("[intrinsics]", out)

    def test_kernels_dir_is_exempt(self):
        code, _, _ = self.lint_tree(
            {
                "src/kernels/kernels_avx2.cpp": (
                    "#include <immintrin.h>\n"
                    "void F(double* p) { _mm256_storeu_pd(p, _mm256_setzero_pd()); }\n"
                )
            }
        )
        self.assertEqual(code, mulink_lint.EXIT_CLEAN)

    def test_annotated_intrinsic_is_allowed(self):
        code, _, _ = self.lint_tree(
            {
                "src/dsp/fft.cpp": (
                    "// mulink-lint: allow(intrinsics): prefetch hint only\n"
                    "void F(const double* p) { _mm_prefetch(p, 1); }\n"
                )
            }
        )
        self.assertEqual(code, mulink_lint.EXIT_CLEAN)

    def test_intrinsic_tokens_in_comments_ignored(self):
        code, _, _ = self.lint_tree(
            {
                "src/core/detector.cpp": (
                    "// the kernels layer uses _mm256_fmadd_pd( internally\n"
                    'const char* kDoc = "__m256d lanes";\n'
                )
            }
        )
        self.assertEqual(code, mulink_lint.EXIT_CLEAN)

    def test_kernels_dir_is_hot_for_alloc(self):
        code, out, _ = self.lint_tree(
            {"src/kernels/scratch.cpp": "void F(V& v) { v.resize(8); }\n"}
        )
        self.assertEqual(code, mulink_lint.EXIT_VIOLATIONS)
        self.assertIn("[hot-alloc]", out)
        self.assertIn("src/kernels/scratch.cpp", out)


class CliSurface(LintHarness):
    def test_rule_filter_runs_only_that_rule(self):
        files = {
            "src/core/detector.cpp": "int* p = new int[4];\n",
            "src/nic/sim.cpp": "auto g = std::mt19937{};\n",
        }
        code, out, _ = self.lint_tree(files, ["--rule", "rng"])
        self.assertEqual(code, mulink_lint.EXIT_VIOLATIONS)
        self.assertIn("[rng]", out)
        self.assertNotIn("[hot-alloc]", out)

    def test_json_output_is_machine_readable(self):
        code, out, _ = self.lint_tree(
            {"src/core/detector.cpp": "int* p = new int[4];\n"}, ["--json"]
        )
        self.assertEqual(code, mulink_lint.EXIT_VIOLATIONS)
        payload = json.loads(out)
        self.assertEqual(payload["violations"][0]["rule"], "hot-alloc")
        self.assertEqual(payload["violations"][0]["file"],
                         "src/core/detector.cpp")

    def test_explicit_file_list_restricts_scan(self):
        files = {
            "src/core/detector.cpp": "int* p = new int[4];\n",
            "src/core/clean.cpp": "int x = 0;\n",
        }
        with tempfile.TemporaryDirectory() as tmp:
            make_tree(Path(tmp), files)
            code, _, _ = self.run_lint(
                ["--root", tmp, "src/core/clean.cpp"]
            )
        self.assertEqual(code, mulink_lint.EXIT_CLEAN)


class RealTree(unittest.TestCase):
    """The shipped tree must be lint-clean — the same gate CI enforces."""

    def test_repository_is_clean(self):
        repo = Path(__file__).resolve().parents[2]
        if not (repo / "src").is_dir():
            self.skipTest("not running from a source checkout")
        out = io.StringIO()
        code = mulink_lint.run(["--root", str(repo)], stdout=out, stderr=out)
        self.assertEqual(code, mulink_lint.EXIT_CLEAN, out.getvalue())


if __name__ == "__main__":
    unittest.main(verbosity=2)
