// Extension — HMM static-profile modeling (the paper's own suggestion in
// Sec. V-B1 for its ROC plateau: "one solution is to model the static
// profiles as well, e.g. via hidden Markov models").
//
// Generates long alternating empty/occupied timelines on each case and
// compares window error rates: raw threshold vs causal HMM filter vs
// forward-backward smoother. Uses the subcarrier-weighting scheme, whose
// raw negatives carry the outlier tail (interference bursts, walker
// excursions) that temporal modeling is meant to absorb.
#include <iostream>

#include "common/rng.h"
#include "core/detector.h"
#include "core/hmm.h"
#include "experiments/format.h"
#include "experiments/scenario.h"
#include "experiments/workload.h"

using namespace mulink;
namespace ex = mulink::experiments;

int main(int argc, char** argv) {
  const bool smoke = ex::SmokeMode(argc, argv);
  (void)smoke;
  ex::PrintBanner(std::cout, "Extension — HMM smoothing of window decisions");

  std::size_t raw_fp = 0, raw_fn = 0;
  std::size_t filt_fp = 0, filt_fn = 0;
  std::size_t smooth_fp = 0, smooth_fn = 0;
  std::size_t total_empty = 0, total_occupied = 0;

  for (const auto& lc : ex::MakePaperCases()) {
    auto sim = ex::MakeSimulator(lc);
    Rng rng(51);

    core::DetectorConfig config;
    config.scheme = core::DetectionScheme::kSubcarrierWeighting;
    // Aggressive threshold: the deployment must catch WEAK (far-corner)
    // targets, so the margin over the empty mean is small — the regime
    // where a memoryless threshold bleeds false alarms.
    config.threshold_sigma = 1.0;
    auto detector = core::Detector::Calibrate(
        sim.CaptureSession(400, std::nullopt, rng), sim.band(), sim.array(),
        config);
    std::vector<std::vector<wifi::CsiPacket>> empty_windows;
    std::vector<double> empty_scores;
    for (int i = 0; i < 16; ++i) {
      empty_windows.push_back(sim.CaptureSession(25, std::nullopt, rng));
      empty_scores.push_back(detector.Score(empty_windows.back()));
    }
    detector.CalibrateThreshold(empty_windows);
    // Semi-supervised fit: a short calibration walk-through at two spots
    // not used in the evaluation timeline supplies occupied-state scores.
    std::vector<double> occupied_scores;
    const auto calib_grid = ex::Grid3x3(lc);
    for (std::size_t spot : {std::size_t{0}, std::size_t{4}}) {
      propagation::HumanBody person;
      person.position = calib_grid[spot].position;
      for (int i = 0; i < 8; ++i) {
        occupied_scores.push_back(
            detector.Score(sim.CaptureSession(25, person, rng)));
      }
    }
    const auto hmm = core::PresenceHmm::FitFromLabelledScores(
        empty_scores, occupied_scores);

    // Timeline: empty(20) -> person A(15) -> empty(20) -> person B(15)
    // -> empty(20), one window per entry.
    const auto grid = ex::Grid3x3(lc);
    std::vector<double> scores;
    std::vector<bool> truth;
    const auto append = [&](std::optional<propagation::HumanBody> human,
                            int windows) {
      for (int i = 0; i < windows; ++i) {
        scores.push_back(detector.Score(sim.CaptureSession(25, human, rng)));
        truth.push_back(human.has_value());
      }
    };
    // Weak targets: the two far corners of the grid.
    propagation::HumanBody a, b;
    a.position = grid[6].position;
    b.position = grid[8].position;
    append(std::nullopt, 20);
    append(a, 15);
    append(std::nullopt, 20);
    append(b, 15);
    append(std::nullopt, 20);

    // Evaluate the three decision rules.
    core::PresenceHmm::Filter filter(hmm);
    const auto posterior = hmm.PosteriorOccupied(scores);
    for (std::size_t t = 0; t < scores.size(); ++t) {
      const bool raw = scores[t] >= detector.threshold();
      const bool filtered = filter.Update(scores[t]) >= 0.5;
      const bool smoothed = posterior[t] >= 0.5;
      if (truth[t]) {
        ++total_occupied;
        raw_fn += raw ? 0 : 1;
        filt_fn += filtered ? 0 : 1;
        smooth_fn += smoothed ? 0 : 1;
      } else {
        ++total_empty;
        raw_fp += raw ? 1 : 0;
        filt_fp += filtered ? 1 : 0;
        smooth_fp += smoothed ? 1 : 0;
      }
    }
  }

  const auto pct = [](std::size_t n, std::size_t d) {
    return ex::Fmt(100.0 * static_cast<double>(n) / static_cast<double>(d), 1);
  };
  ex::PrintTable(std::cout, "window error rates over 5-case timelines",
                 {"decision rule", "FP %", "miss %"},
                 {{"raw threshold", pct(raw_fp, total_empty),
                   pct(raw_fn, total_occupied)},
                  {"HMM filter (causal)", pct(filt_fp, total_empty),
                   pct(filt_fn, total_occupied)},
                  {"HMM smoother (offline)", pct(smooth_fp, total_empty),
                   pct(smooth_fn, total_occupied)}});
  std::cout << "Reading: the HMM variants absorb the score outliers "
               "(interference bursts,\nwalker excursions) that the "
               "aggressive raw threshold converts into false\nalarms — at "
               "the cost of misses concentrated at occupancy transitions "
               "and on\nthe weakest windows (the persistence prior needs "
               "sustained evidence). Tune\ntransition_prob to trade the "
               "two; the paper's Sec. V-B1 expects exactly this\n"
               "FP-suppression role for profile modeling.\n";
  return 0;
}
