// Fig. 3 — The multipath factor and its relationship with RSS change.
//
//  (a) Distribution of measured multipath factors over the 500-location
//      workload (diverse across locations and subcarriers).
//  (b) Scatter of (mu, Delta_s) at subcarrier f5 with a logarithmic fit —
//      the paper's "RSS change roughly falls monotonously with the increase
//      of the multipath factor".
//  (c) Logarithmic fits at 5 separated subcarriers: fit parameters vary, the
//      decreasing trend holds for all.
#include <algorithm>
#include <iostream>

#include "common/rng.h"
#include "core/multipath_factor.h"
#include "core/sanitize.h"
#include "dsp/fit.h"
#include "dsp/stats.h"
#include "experiments/format.h"
#include "experiments/scenario.h"
#include "experiments/workload.h"

using namespace mulink;
namespace ex = mulink::experiments;

int main(int argc, char** argv) {
  const bool smoke = ex::SmokeMode(argc, argv);
  (void)smoke;
  const ex::LinkCase lc = ex::MakeClassroomLink();
  auto sim = ex::MakeSimulator(lc);
  Rng rng(3);

  // Static profile (per-subcarrier dB) from an empty-room session.
  std::vector<double> profile(sim.band().NumSubcarriers(), 0.0);
  {
    const auto clean = core::SanitizePhase(
        sim.CaptureSession(300, std::nullopt, rng), sim.band());
    for (std::size_t k = 0; k < profile.size(); ++k) {
      double p = 0.0;
      for (const auto& packet : clean) p += packet.SubcarrierPower(0, k);
      profile[k] = 10.0 * std::log10(
                       std::max(p / static_cast<double>(clean.size()), 1e-30));
    }
  }

  // 500-location workload: per-packet (mu, Delta_s) samples per subcarrier.
  const std::size_t num_sc = sim.band().NumSubcarriers();
  std::vector<std::vector<double>> mu_samples(num_sc), ds_samples(num_sc);
  const auto spots = ex::RandomNearLink(lc, 500, 0.8, rng);
  for (const auto& spot : spots) {
    propagation::HumanBody body;
    body.position = spot.position;
    const auto clean =
        core::SanitizePhase(sim.CaptureSession(6, body, rng), sim.band());
    for (std::size_t m = 0; m < clean.size(); ++m) {
      // mu and Delta_s from the same antenna, as on a single-radio deployment.
      const auto mu_row =
          core::MeasureMultipathFactors(clean[m].AntennaCfr(0), sim.band());
      for (std::size_t k = 0; k < num_sc; ++k) {
        mu_samples[k].push_back(mu_row[k]);
        ds_samples[k].push_back(
            10.0 * std::log10(std::max(clean[m].SubcarrierPower(0, k),
                                       1e-30)) -
            profile[k]);
      }
    }
  }

  ex::PrintBanner(std::cout, "Fig. 3a — Multipath factor distribution");
  std::vector<double> all_mu;
  for (const auto& col : mu_samples) {
    all_mu.insert(all_mu.end(), col.begin(), col.end());
  }
  const auto cdf = dsp::EmpiricalCdf(all_mu, 41);
  std::vector<double> xs, ys;
  for (const auto& point : cdf) {
    xs.push_back(point.value);
    ys.push_back(point.probability);
  }
  ex::PrintSeries(std::cout, "CDF of multipath factor (all subcarriers)",
                  "multipath_factor", "cdf", xs, ys);
  std::cout << "spread: p05 " << ex::Fmt(dsp::Quantile(all_mu, 0.05), 4)
            << ", median " << ex::Fmt(dsp::Median(all_mu), 4) << ", p95 "
            << ex::Fmt(dsp::Quantile(all_mu, 0.95), 4)
            << " (diverse across locations/subcarriers, as in the paper)\n";

  ex::PrintBanner(std::cout, "Fig. 3b — RSS change vs multipath factor @ f5");
  const std::size_t k5 = 4;  // subcarrier f5, 0-based position
  {
    // Binned medians of the scatter (10 equal-population mu bins).
    std::vector<std::size_t> order(mu_samples[k5].size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return mu_samples[k5][a] < mu_samples[k5][b];
    });
    std::vector<double> bin_mu, bin_ds;
    const std::size_t bins = 10, per = order.size() / bins;
    for (std::size_t b = 0; b < bins; ++b) {
      std::vector<double> mus, dss;
      for (std::size_t i = b * per; i < (b + 1) * per; ++i) {
        mus.push_back(mu_samples[k5][order[i]]);
        dss.push_back(ds_samples[k5][order[i]]);
      }
      bin_mu.push_back(dsp::Median(mus));
      bin_ds.push_back(dsp::Median(dss));
    }
    ex::PrintSeries(std::cout, "binned median RSS change vs mu @ f5",
                    "multipath_factor", "rss_change_db", bin_mu, bin_ds);
    const auto fit = dsp::FitLogarithmic(mu_samples[k5], ds_samples[k5]);
    std::cout << "logarithmic fit @ f5: delta_s = " << ex::Fmt(fit.intercept)
              << " + " << ex::Fmt(fit.slope) << " * ln(mu), R^2 = "
              << ex::Fmt(fit.r_squared) << "\n"
              << "(paper: monotonically decreasing with logarithmic shape)\n";
  }

  ex::PrintBanner(std::cout, "Fig. 3c — Logarithmic fits at 5 subcarriers");
  // The paper displays 5 *selected* subcarriers and explains the selection:
  // adjacent subcarriers fit similarly, and "some subcarriers only vary
  // within a small range, which may lead to error-prone fitting". Mirror
  // that: rank subcarriers by the dynamic range of their measured mu and
  // pick 5 separated ones from the top half.
  std::vector<std::size_t> ranked(num_sc);
  for (std::size_t k = 0; k < num_sc; ++k) ranked[k] = k;
  std::sort(ranked.begin(), ranked.end(), [&](std::size_t a, std::size_t b) {
    const auto range = [&](std::size_t k) {
      return dsp::Quantile(mu_samples[k], 0.9) /
             std::max(dsp::Quantile(mu_samples[k], 0.1), 1e-12);
    };
    return range(a) > range(b);
  });
  std::vector<std::size_t> chosen;
  for (std::size_t k : ranked) {
    bool separated = true;
    for (std::size_t c : chosen) {
      if (std::abs(static_cast<int>(k) - static_cast<int>(c)) < 4) {
        separated = false;
      }
    }
    if (separated) chosen.push_back(k);
    if (chosen.size() == 5) break;
  }
  std::sort(chosen.begin(), chosen.end());

  std::vector<std::vector<std::string>> rows;
  for (std::size_t k : chosen) {
    const auto fit = dsp::FitLogarithmic(mu_samples[k], ds_samples[k]);
    // Built via append, not operator+: the rvalue string operator+ overloads
    // trip GCC 12's -Wrestrict false positive (PR105651) at -O3, which
    // MULINK_STRICT's -Werror would make fatal.
    std::string label = "f";
    label += std::to_string(k + 1);
    rows.push_back({std::move(label), ex::Fmt(fit.intercept),
                    ex::Fmt(fit.slope), ex::Fmt(fit.r_squared),
                    fit.slope < 0.0 ? "decreasing" : "INCREASING(!)"});
  }
  ex::PrintTable(std::cout, "log fits at 5 high-dynamic-range subcarriers",
                 {"subcarrier", "intercept", "slope", "R^2", "trend"}, rows);

  std::size_t decreasing = 0;
  for (std::size_t k = 0; k < num_sc; ++k) {
    if (dsp::FitLogarithmic(mu_samples[k], ds_samples[k]).slope < 0.0) {
      ++decreasing;
    }
  }
  std::cout << "subcarriers with decreasing fits: " << decreasing << "/"
            << num_sc
            << "\n(paper: fit parameters vary, the decreasing trend holds on "
               "distinctive subcarriers;\nquiet subcarriers are error-prone "
               "to fit — its stated reason for showing only 5)\n";
  return 0;
}
