// Ablation — path weighting design choices (Eq. 17).
//
// The paper fixes [theta_min, theta_max] = [-60, 60] "empirically" and
// leaves the rest unspecified. This bench quantifies: the angular window
// half-width, the pseudospectrum floor protecting 1/Ps, and the covariance
// noise-floor subtraction, on the full 5-case campaign (combined scheme).
#include <iostream>

#include "experiments/campaign.h"
#include "experiments/format.h"

using namespace mulink;
namespace ex = mulink::experiments;

namespace {

bool g_smoke = false;

void RunOne(const std::vector<ex::LinkCase>& cases,
            const std::vector<std::vector<ex::HumanSpot>>& spots,
            const core::DetectorConfig& detector, const std::string& label,
            std::vector<std::vector<std::string>>& rows) {
  ex::CampaignConfig config;
  config.packets_per_location = g_smoke ? 75 : 400;
  config.calibration_packets = g_smoke ? 100 : 400;
  config.empty_packets = g_smoke ? 150 : 1000;
  config.seed = 16;
  config.detector = detector;

  const auto result = ex::RunCampaign(
      cases, spots, {core::DetectionScheme::kSubcarrierAndPathWeighting},
      config);
  const auto roc = result.schemes[0].Roc();
  const auto best = roc.BestBalancedAccuracy();
  rows.push_back({label, ex::Fmt(roc.Auc()),
                  ex::Fmt(best.true_positive_rate * 100.0, 1),
                  ex::Fmt(best.false_positive_rate * 100.0, 1)});
}

}  // namespace

int main(int argc, char** argv) {
  g_smoke = ex::SmokeMode(argc, argv);
  ex::PrintBanner(std::cout, "Ablation — path weighting design (Eq. 17)");

  const auto cases = ex::MakePaperCases();
  std::vector<std::vector<ex::HumanSpot>> spots;
  for (const auto& lc : cases) spots.push_back(ex::Grid3x3(lc));

  std::vector<std::vector<std::string>> rows;

  // Angular window half-width (paper: 60 deg).
  for (double half_width : {30.0, 60.0, 90.0}) {
    core::DetectorConfig detector;
    detector.path_weighting.theta_min_deg = -half_width;
    detector.path_weighting.theta_max_deg = half_width;
    RunOne(cases, spots, detector,
           "window +-" + ex::Fmt(half_width, 0) + "deg", rows);
  }

  // Pseudospectrum floor for the 1/Ps inversion.
  for (double floor : {0.02, 0.1, 0.5}) {
    core::DetectorConfig detector;
    detector.path_weighting.spectrum_floor_ratio = floor;
    RunOne(cases, spots, detector, "floor " + ex::Fmt(floor, 2), rows);
  }

  // Uniform in-window weights (w = 1 inside the window) via a total floor:
  // floor ratio 1.0 clips every direction to the max, flattening 1/Ps.
  {
    core::DetectorConfig detector;
    detector.path_weighting.spectrum_floor_ratio = 1.0;
    RunOne(cases, spots, detector, "uniform in-window (no 1/Ps)", rows);
  }

  // Covariance noise-floor subtraction on/off.
  {
    core::DetectorConfig detector;
    detector.noise_floor_subtraction = false;
    RunOne(cases, spots, detector, "no noise-floor subtraction", rows);
  }

  ex::PrintTable(std::cout, "combined scheme ablation",
                 {"variant", "AUC", "TP %", "FP %"}, rows);
  std::cout << "Expected: +-60 deg beats both the narrow window (misses NLOS "
               "directions)\nand the full +-90 (admits error-prone endfire "
               "estimates); 1/Ps beats uniform;\nnoise-floor subtraction "
               "protects against co-channel interference.\n";
  return 0;
}
