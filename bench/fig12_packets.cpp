// Fig. 12 — Impact of packet quantity (monitoring window length M).
//
// Paper shape: at 50 packets per second the detection rate saturates with
// only ~0.5 s of measurements (M ~ 25), so decisions arrive with sub-second
// latency; the weighting schemes' compute cost is negligible next to the
// packet budget.
#include <iostream>

#include "experiments/campaign.h"
#include "experiments/format.h"

using namespace mulink;
namespace ex = mulink::experiments;

int main(int argc, char** argv) {
  const bool smoke = ex::SmokeMode(argc, argv);
  (void)smoke;
  ex::PrintBanner(std::cout, "Fig. 12 — Detection rate vs window packets");

  const auto all_cases = ex::MakePaperCases();
  std::vector<ex::LinkCase> cases = {all_cases[0], all_cases[2]};
  std::vector<std::vector<ex::HumanSpot>> spots;
  for (const auto& lc : cases) spots.push_back(ex::Grid3x3(lc));

  std::vector<std::vector<std::string>> rows;
  for (std::size_t window : {5u, 10u, 15u, 25u, 50u, 100u}) {
    ex::CampaignConfig config;
    config.window_packets = window;
    config.packets_per_location = smoke ? 100 : 400;
    config.calibration_packets = smoke ? 100 : 400;
    config.empty_packets = smoke ? 200 : 1200;
    config.seed = 12;

    const auto result = ex::RunCampaign(
        cases, spots,
        {core::DetectionScheme::kBaseline,
         core::DetectionScheme::kSubcarrierWeighting,
         core::DetectionScheme::kSubcarrierAndPathWeighting},
        config);

    // Detection rate at a fixed 10% false-positive budget, so rows with
    // different window lengths are directly comparable.
    std::vector<std::string> row = {
        std::to_string(window),
        ex::Fmt(static_cast<double>(window) / 50.0, 2)};
    for (const auto& scheme : result.schemes) {
      const auto point = scheme.Roc().PointAtFalsePositive(0.10);
      row.push_back(ex::Fmt(point.true_positive_rate * 100.0, 1));
    }
    rows.push_back(std::move(row));
  }
  ex::PrintTable(
      std::cout,
      "detection rate % at 10% false-positive budget vs window length",
      {"packets", "seconds", "baseline", "subcarrier", "subcarrier+path"},
      rows);
  std::cout << "Paper shape: rates stabilize by ~0.5 s of packets (M ~ 25); "
               "longer windows add little.\n";
  return 0;
}
