// Extension — multipath factor vs fade level as sensitivity proxies.
//
// The related-work section contrasts the paper's multipath factor with the
// fade level of Wilson & Patwari [12] on two counts: the multipath factor
// needs no propagation formula, and it is per-subcarrier per-packet. This
// bench measures both claims: (a) how well each metric ranks subcarriers by
// their actual human sensitivity, and (b) what a wrong path-loss assumption
// does to each.
#include <algorithm>
#include <iostream>

#include "common/rng.h"
#include "core/fade_level.h"
#include "core/multipath_factor.h"
#include "core/sanitize.h"
#include "dsp/stats.h"
#include "experiments/format.h"
#include "experiments/scenario.h"
#include "experiments/workload.h"

using namespace mulink;
namespace ex = mulink::experiments;

int main(int argc, char** argv) {
  const bool smoke = ex::SmokeMode(argc, argv);
  (void)smoke;
  ex::PrintBanner(std::cout,
                  "Extension — multipath factor vs fade level as proxies");

  const ex::LinkCase lc = ex::MakeClassroomLink();
  auto sim = ex::MakeSimulator(lc);
  Rng rng(31);
  const double link_m = lc.LinkLength();

  // Ground truth: per-subcarrier human sensitivity — mean |RSS change| over
  // a set of near-link positions.
  const auto calibration = core::SanitizePhase(
      sim.CaptureSession(300, std::nullopt, rng), sim.band());
  std::vector<double> profile(30, 0.0);
  for (std::size_t k = 0; k < 30; ++k) {
    double p = 0.0;
    for (const auto& packet : calibration) p += packet.SubcarrierPower(0, k);
    profile[k] = p / static_cast<double>(calibration.size());
  }

  std::vector<double> sensitivity(30, 0.0);
  const auto spots = ex::RandomNearLink(lc, 60, 0.5, rng);
  for (const auto& spot : spots) {
    propagation::HumanBody body;
    body.position = spot.position;
    const auto clean =
        core::SanitizePhase(sim.CaptureSession(15, body, rng), sim.band());
    for (std::size_t k = 0; k < 30; ++k) {
      double p = 0.0;
      for (const auto& packet : clean) p += packet.SubcarrierPower(0, k);
      p /= static_cast<double>(clean.size());
      sensitivity[k] +=
          std::abs(10.0 * std::log10(std::max(p, 1e-30) / profile[k]));
    }
  }
  for (auto& s : sensitivity) s /= static_cast<double>(spots.size());

  // Metric values on the static channel.
  std::vector<double> mu(30, 0.0), fade(30, 0.0), fade_wrong(30, 0.0);
  core::FadeLevelModel right;
  right.friis = ex::DefaultSimConfig().friis;
  core::FadeLevelModel wrong = right;
  wrong.friis.attenuation_factor = 3.0;  // assumes a lossier world
  for (const auto& packet : calibration) {
    const auto mu_row = core::MeasureMultipathFactors(packet, sim.band());
    const auto fl = core::MeasureFadeLevelPerSubcarrier(packet, sim.band(),
                                                        link_m, right);
    const auto flw = core::MeasureFadeLevelPerSubcarrier(packet, sim.band(),
                                                         link_m, wrong);
    for (std::size_t k = 0; k < 30; ++k) {
      mu[k] += mu_row[k];
      fade[k] += fl[k];
      fade_wrong[k] += flw[k];
    }
  }
  const double inv = 1.0 / static_cast<double>(calibration.size());
  for (std::size_t k = 0; k < 30; ++k) {
    mu[k] *= inv;
    fade[k] *= inv;
    fade_wrong[k] *= inv;
  }

  // (a) How well does each metric rank subcarriers by sensitivity?
  // mu predicts MORE sensitivity when larger; fade level when MORE NEGATIVE.
  std::vector<double> neg_fade = fade, neg_fade_wrong = fade_wrong;
  for (auto& v : neg_fade) v = -v;
  for (auto& v : neg_fade_wrong) v = -v;
  ex::PrintTable(
      std::cout, "correlation with true per-subcarrier human sensitivity",
      {"metric", "pearson r"},
      {{"multipath factor (mean over packets)",
        ex::Fmt(dsp::Correlation(mu, sensitivity))},
       {"-fade level (correct model)",
        ex::Fmt(dsp::Correlation(neg_fade, sensitivity))},
       {"-fade level (wrong n=3 model)",
        ex::Fmt(dsp::Correlation(neg_fade_wrong, sensitivity))}});

  // (b) Model-mismatch bias: absolute shift of each metric.
  double shift = 0.0;
  for (std::size_t k = 0; k < 30; ++k) {
    shift += std::abs(fade_wrong[k] - fade[k]);
  }
  shift /= 30.0;
  std::cout << "fade-level bias from assuming n=3 instead of n=2.1: "
            << ex::Fmt(shift, 1) << " dB on every subcarrier\n"
            << "multipath factor bias from the same mistake: 0 (it has no "
               "model input)\n\n"
            << "Paper's claims (Sec. VI), visible above: the multipath "
               "factor needs no\npropagation formula (zero model bias) and "
               "ranks subcarrier sensitivity far\nbetter than the "
               "formula-anchored fade level, whose absolute value shifts\n"
               "wholesale when the assumed path-loss exponent is wrong.\n";
  return 0;
}
