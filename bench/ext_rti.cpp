// Extension — Radio Tomographic Imaging baseline (the paper's ref [3]).
//
// The dense-deployment alternative the introduction argues against: N
// perimeter nodes, all-pairs links, ellipse-model image inversion. Measures
// localization error and infrastructure cost vs node count, against the
// paper's single adapted 3-antenna link (which detects but does not
// localize — the paper frames detection as the primary step).
#include <iostream>

#include "common/rng.h"
#include "core/rti.h"
#include "dsp/stats.h"
#include "experiments/format.h"
#include "experiments/scenario.h"

using namespace mulink;
namespace ex = mulink::experiments;

int main(int argc, char** argv) {
  const bool smoke = ex::SmokeMode(argc, argv);
  (void)smoke;
  ex::PrintBanner(std::cout, "Extension — RTI dense-deployment baseline");

  auto lc = ex::MakeClassroomLink();
  lc.walker_bases.clear();  // RTI literature assumes an otherwise-still room
  const double width = lc.room.width(), depth = lc.room.depth();

  auto sim_config = ex::DefaultSimConfig();
  sim_config.interference_entry_prob = 0.0;
  sim_config.slow_gain_drift_db = 0.05;

  const std::vector<geometry::Vec2> test_positions = {
      {2.0, 2.0}, {4.0, 3.0}, {3.0, 5.5}, {1.5, 6.5}, {4.5, 6.0}};

  std::vector<std::vector<std::string>> rows;
  for (std::size_t node_count : {4u, 6u, 8u, 12u}) {
    const auto nodes = core::PerimeterNodes(width, depth, node_count, 0.5);
    core::RtiConfig config;
    config.ellipse_excess_m = 0.3;
    const core::RtiImager imager(nodes, width, depth, config);

    std::vector<nic::ChannelSimulator> sims;
    for (const auto& [a, b] : imager.links()) {
      sims.emplace_back(lc.room, nodes[a], nodes[b],
                        wifi::UniformLinearArray(1, kWavelength / 2.0, 0.0),
                        wifi::BandPlan::Intel5300Channel11(), sim_config);
    }

    Rng rng(91);
    std::vector<double> errors;
    double empty_peak = 0.0, occupied_peak = 0.0;
    for (const auto& person : test_positions) {
      std::vector<double> delta(imager.links().size(), 0.0);
      std::vector<double> delta_empty(imager.links().size(), 0.0);
      for (std::size_t l = 0; l < sims.size(); ++l) {
        const auto profile = sims[l].CaptureSession(20, std::nullopt, rng);
        propagation::HumanBody body;
        body.position = person;
        const auto occupied = sims[l].CaptureSession(20, body, rng);
        const auto still_empty = sims[l].CaptureSession(20, std::nullopt, rng);
        double p0 = 0.0, p1 = 0.0, p2 = 0.0;
        for (const auto& packet : profile) p0 += packet.TotalPower();
        for (const auto& packet : occupied) p1 += packet.TotalPower();
        for (const auto& packet : still_empty) p2 += packet.TotalPower();
        delta[l] = std::max(0.0, 10.0 * std::log10(p0 / p1));
        delta_empty[l] = std::max(0.0, 10.0 * std::log10(p0 / p2));
      }
      const auto image = imager.Reconstruct(delta);
      errors.push_back(
          geometry::Distance(imager.LocateMax(image), person));
      occupied_peak += imager.PeakValue(image);
      empty_peak += imager.PeakValue(imager.Reconstruct(delta_empty));
    }
    rows.push_back({std::to_string(node_count),
                    std::to_string(imager.links().size()),
                    ex::Fmt(dsp::Median(errors), 2),
                    ex::Fmt(dsp::Max(errors), 2),
                    ex::Fmt(occupied_peak / empty_peak, 1)});
  }
  ex::PrintTable(std::cout, "RTI vs node count (classroom, 5 test positions)",
                 {"nodes", "links", "median loc err m", "max loc err m",
                  "peak contrast (occ/empty)"},
                 rows);
  std::cout << "RTI localizes — at the cost of N transceivers and N(N-1)/2 "
               "link profiles.\nThe paper's single adapted link (3 RX "
               "antennas) detects with two radios;\nlocalization is the "
               "'higher-level context' its conclusion defers to follow-ups.\n";
  return 0;
}
