// Fig. 10 — CDF of angle estimation errors with the 3-antenna array.
//
// Paper shape: median error can exceed 20 degrees from one packet; averaging
// over multiple packets improves moderately (the person is never perfectly
// still, so averaging sweeps a tiny synthetic aperture), but large tail
// errors remain — the root cause of path weighting's occasional dips.
#include <algorithm>
#include <iostream>

#include "common/rng.h"
#include "core/music.h"
#include "core/sanitize.h"
#include "linalg/hermitian_eig.h"
#include "dsp/stats.h"
#include "experiments/format.h"
#include "experiments/scenario.h"
#include "experiments/workload.h"

using namespace mulink;
namespace ex = mulink::experiments;

int main(int argc, char** argv) {
  const bool smoke = ex::SmokeMode(argc, argv);
  (void)smoke;
  ex::PrintBanner(std::cout, "Fig. 10 — Angle estimation error CDF");

  const ex::LinkCase lc = ex::MakeShortWallLink();
  auto sim = ex::MakeSimulator(lc);
  Rng rng(10);

  const auto calibration = core::SanitizePhase(
      sim.CaptureSession(300, std::nullopt, rng), sim.band());
  const auto static_cov = core::SampleCovariance(calibration);

  // Humans on a 1.2 m arc at known angles; estimate each from 2 packets and
  // from 30 packets.
  std::vector<double> errors_single, errors_averaged;
  for (int truth = -50; truth <= 50; truth += 10) {
    const auto spots = ex::AngularArc(lc, 1.2, {static_cast<double>(truth)});
    propagation::HumanBody body;
    body.position = spots[0].position;
    for (int trial = 0; trial < 10; ++trial) {
      const auto few = core::SanitizePhase(sim.CaptureSession(2, body, rng),
                                           sim.band());
      const auto many = core::SanitizePhase(sim.CaptureSession(30, body, rng),
                                            sim.band());
      errors_single.push_back(std::abs(
          core::EstimateNewPathAngleDeg(few, static_cov, sim.array(),
                                        sim.band()) -
          spots[0].angle_deg));
      errors_averaged.push_back(std::abs(
          core::EstimateNewPathAngleDeg(many, static_cov, sim.array(),
                                        sim.band()) -
          spots[0].angle_deg));
    }
  }

  for (auto* errors : {&errors_single, &errors_averaged}) {
    const char* label =
        errors == &errors_single ? "2-packet estimate" : "30-packet estimate";
    const auto cdf = dsp::EmpiricalCdf(*errors, 21);
    std::vector<double> xs, ys;
    for (const auto& point : cdf) {
      xs.push_back(point.value);
      ys.push_back(point.probability);
    }
    ex::PrintSeries(std::cout, std::string("angle error CDF — ") + label,
                    "error_deg", "cdf", xs, ys);
    std::cout << "  median " << ex::Fmt(dsp::Median(*errors), 1) << " deg, "
              << "p90 " << ex::Fmt(dsp::Quantile(*errors, 0.9), 1)
              << " deg\n\n";
  }

  std::cout << "Paper shape: averaging reduces errors moderately; large tail "
               "errors remain\n(3-antenna aperture limits resolution).\n";
  return 0;
}
