// Extension — SAR-style virtual apertures (the paper's future-work note:
// "emulate a large antenna array via Synthesis Aperture Radar techniques
// [25]" to sharpen angle estimation beyond the 3-antenna limit).
//
// A single receive antenna is stepped along the array axis at
// half-wavelength spacing; the K position captures are stacked into a
// virtual K-element array and fed to the unchanged MUSIC estimator. As in
// the real technique, this requires phase coherence across positions — the
// capture here disables the per-packet random oscillator phase, standing in
// for [25]'s relative-phase recovery.
#include <iostream>

#include "common/rng.h"
#include "core/music.h"
#include "core/sanitize.h"
#include "dsp/stats.h"
#include "experiments/format.h"
#include "experiments/scenario.h"

using namespace mulink;
namespace ex = mulink::experiments;

namespace {

// Capture one coherent snapshot per virtual element: a 1-antenna receiver
// moved to K positions along the array axis.
wifi::CsiPacket VirtualAperturePacket(const ex::LinkCase& lc,
                                      std::size_t elements,
                                      const nic::ChannelSimConfig& config,
                                      Rng& rng) {
  const double axis = lc.LinkDirection() + kPi / 2.0;
  const geometry::Vec2 axis_dir{std::cos(axis), std::sin(axis)};
  const double spacing = kWavelength / 2.0;

  wifi::CsiPacket stacked;
  stacked.csi = linalg::CMatrix(elements, 30);
  for (std::size_t e = 0; e < elements; ++e) {
    const double offset =
        (static_cast<double>(e) -
         static_cast<double>(elements - 1) / 2.0) *
        spacing;
    nic::ChannelSimulator sim(
        lc.room, lc.tx, lc.rx + axis_dir * offset,
        wifi::UniformLinearArray(1, spacing, axis),
        wifi::BandPlan::Intel5300Channel11(), config);
    const auto packet = sim.CapturePacket(std::nullopt, rng);
    for (std::size_t k = 0; k < 30; ++k) {
      stacked.csi.At(e, k) = packet.csi.At(0, k);
    }
  }
  return stacked;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = ex::SmokeMode(argc, argv);
  (void)smoke;
  ex::PrintBanner(std::cout, "Extension — SAR virtual apertures for AoA");

  auto lc = ex::MakeShortWallLink();
  lc.walker_bases.clear();
  // Coherence assumption of [25]: no random per-packet oscillator phase.
  auto config = ex::DefaultSimConfig();
  config.noise.random_common_phase = false;
  config.noise.sto_range_s = 0.0;
  config.interference_entry_prob = 0.0;
  config.slow_gain_drift_db = 0.0;
  config.background_jitter_m = 0.0;

  // Ground truth: the strongest in-window wall reflection.
  auto reference = ex::MakeSimulator(lc, config);
  double truth_deg = 0.0, best_gain = 0.0;
  for (const auto& path : reference.StaticPaths()) {
    if (path.kind == propagation::PathKind::kWallReflection) {
      const double theta = RadToDeg(
          reference.array().BroadsideAngle(path.arrival_direction_rad));
      if (std::abs(theta) < 75.0 && path.gain_at_center > best_gain) {
        best_gain = path.gain_at_center;
        truth_deg = theta;
      }
    }
  }
  std::cout << "truth: wall reflection at " << ex::Fmt(truth_deg, 1)
            << " deg\n\n";

  std::vector<std::vector<std::string>> rows;
  for (std::size_t elements : {3u, 5u, 8u, 12u, 16u}) {
    Rng rng(97);
    std::vector<double> errors;
    for (int trial = 0; trial < 12; ++trial) {
      std::vector<wifi::CsiPacket> snapshots;
      for (int s = 0; s < 8; ++s) {
        snapshots.push_back(
            VirtualAperturePacket(lc, elements, config, rng));
      }
      const wifi::UniformLinearArray virtual_array(
          elements, kWavelength / 2.0, lc.LinkDirection() + kPi / 2.0);
      core::MusicConfig music;
      music.num_sources = 2;
      const auto spectrum = core::ComputeMusicSpectrum(
          core::SanitizePhase(snapshots, wifi::BandPlan::Intel5300Channel11()),
          virtual_array, wifi::BandPlan::Intel5300Channel11(), music);
      double best_err = 180.0;
      for (double peak : spectrum.PeakAngles(3)) {
        best_err = std::min(best_err, std::abs(peak - truth_deg));
      }
      errors.push_back(best_err);
    }
    rows.push_back({std::to_string(elements),
                    ex::Fmt(static_cast<double>(elements - 1) * kWavelength /
                                2.0 * 100.0,
                            0) +
                        " cm",
                    ex::Fmt(dsp::Median(errors), 1),
                    ex::Fmt(dsp::Quantile(errors, 0.9), 1)});
  }
  ex::PrintTable(std::cout,
                 "wall-reflection AoA error vs virtual aperture",
                 {"virtual elements", "aperture", "median err deg",
                  "p90 err deg"},
                 rows);
  std::cout << "Shape per the paper's future-work claim: aperture, not "
               "packet averaging, is\nwhat buys angular resolution — a "
               "stepped single antenna matches a large array\nwhen phase "
               "coherence can be maintained.\n";
  return 0;
}
