// Fig. 9 — Detection rate vs human distance to the receiver (1 m .. 5 m).
//
// Paper shape: the baseline collapses with distance (< 60% at 5 m) while
// both weighted schemes stay above 90% out to 5 m, with path weighting
// strongest for distant humans (+12%). At a required detection rate of 90%,
// the weighted schemes roughly double the usable range ("~1x gain").
#include <iostream>

#include "experiments/campaign.h"
#include "experiments/format.h"
#include "experiments/parallel_runner.h"

using namespace mulink;
namespace ex = mulink::experiments;

int main(int argc, char** argv) {
  const bool smoke = ex::SmokeMode(argc, argv);
  (void)smoke;
  ex::PrintBanner(std::cout, "Fig. 9 — Detection rate vs distance to RX");

  // Distance-sweep workload aggregated over all five links, mirroring the
  // paper's 1..5 m bins (far bins mix near-AP and far-off-link locations).
  const auto cases = ex::MakePaperCases();

  const std::vector<double> distances = {1.0, 2.0, 3.0, 4.0, 5.0};
  std::vector<std::vector<ex::HumanSpot>> spots;
  for (const auto& lc : cases) {
    spots.push_back(ex::RangeSweep(lc, distances, {-1.0, 0.0, 1.0}));
  }

  ex::CampaignConfig config;
  config.packets_per_location = smoke ? 75 : 400;
  config.calibration_packets = smoke ? 100 : 400;
  config.empty_packets = smoke ? 150 : 1000;
  config.seed = 9;

  const ex::ParallelCampaignRunner runner;
  const auto result = runner.Run(
      cases, spots,
      {core::DetectionScheme::kBaseline,
       core::DetectionScheme::kSubcarrierWeighting,
       core::DetectionScheme::kSubcarrierAndPathWeighting},
      config);

  std::vector<std::vector<std::string>> rows;
  std::vector<std::vector<double>> rates_per_scheme(result.schemes.size());
  for (std::size_t di = 0; di < distances.size(); ++di) {
    const double lo = distances[di] - 0.5;
    const double hi = distances[di] + 0.5;
    std::vector<std::string> row = {ex::Fmt(distances[di], 1)};
    for (std::size_t s = 0; s < result.schemes.size(); ++s) {
      const auto& scheme = result.schemes[s];
      const auto best = scheme.Roc().BestBalancedAccuracy();
      const double rate = scheme.DetectionRate(
          best.threshold, [&](const ex::ScoredWindow& w) {
            return w.distance_to_rx_m >= lo && w.distance_to_rx_m < hi;
          });
      rates_per_scheme[s].push_back(rate);
      row.push_back(ex::Fmt(rate * 100.0, 1));
    }
    rows.push_back(std::move(row));
  }
  ex::PrintTable(std::cout, "detection rate % by distance bin",
                 {"distance_m", "baseline", "subcarrier", "subcarrier+path"},
                 rows);

  // Range at >= 90% detection: the paper's "~1x gain" headline.
  const auto range_at_90 = [&](const std::vector<double>& rates) {
    double range = 0.0;
    for (std::size_t di = 0; di < distances.size(); ++di) {
      if (rates[di] >= 0.9) {
        range = distances[di];
      } else {
        break;
      }
    }
    return range;
  };
  std::vector<std::vector<std::string>> range_rows;
  for (std::size_t s = 0; s < result.schemes.size(); ++s) {
    range_rows.push_back(
        {core::ToString(result.schemes[s].scheme),
         ex::Fmt(range_at_90(rates_per_scheme[s]), 1)});
  }
  ex::PrintTable(std::cout, "max distance with detection rate >= 90%",
                 {"scheme", "range_m"}, range_rows);
  std::cout << "Paper: baseline < 60% at 5 m; weighted schemes >= 90% at "
               "5 m -> ~1x range gain.\n";
  return 0;
}
