// Fig. 4 — Temporal stability of the multipath factor.
//
//  (a) mu per subcarrier from two individual packets at the same human
//      location: the subcarrier holding the maximal mu can differ packet to
//      packet.
//  (b)/(c) Distribution of mu over 5000 packets at two different human
//      locations: some locations keep their top subcarriers stable, others
//      fluctuate — the motivation for the stability ratio r_k of Eq. 13.
#include <algorithm>
#include <iostream>

#include "common/rng.h"
#include "core/multipath_factor.h"
#include "core/sanitize.h"
#include "core/subcarrier_weighting.h"
#include "dsp/stats.h"
#include "experiments/format.h"
#include "experiments/scenario.h"
#include "experiments/workload.h"

using namespace mulink;
namespace ex = mulink::experiments;

namespace {

// Per-packet multipath factors for a 5000-packet session at one location.
std::vector<std::vector<double>> MuSession(nic::ChannelSimulator& sim,
                                           geometry::Vec2 pos, Rng& rng,
                                           std::size_t packets) {
  propagation::HumanBody body;
  body.position = pos;
  const auto clean =
      core::SanitizePhase(sim.CaptureSession(packets, body, rng), sim.band());
  return core::MeasureMultipathFactors(clean, sim.band());
}

std::size_t ArgMax(const std::vector<double>& xs) {
  return static_cast<std::size_t>(
      std::max_element(xs.begin(), xs.end()) - xs.begin());
}

void ReportLocation(const char* title,
                    const std::vector<std::vector<double>>& mu_rows) {
  const std::size_t num_sc = mu_rows[0].size();

  // How often each subcarrier holds the maximal mu.
  std::vector<std::size_t> argmax_counts(num_sc, 0);
  for (const auto& row : mu_rows) ++argmax_counts[ArgMax(row)];
  std::size_t distinct = 0;
  for (auto c : argmax_counts) {
    if (c > 0) ++distinct;
  }

  const auto weights = core::ComputeSubcarrierWeights(mu_rows);
  std::vector<double> t(num_sc), mean_mu(num_sc), stability(num_sc);
  for (std::size_t k = 0; k < num_sc; ++k) {
    t[k] = static_cast<double>(k + 1);
    mean_mu[k] = weights.mean_mu[k];
    stability[k] = weights.stability[k];
  }
  ex::PrintBanner(std::cout, title);
  ex::PrintSeries(std::cout, "temporal mean of mu per subcarrier",
                  "subcarrier", "mean_mu", t, mean_mu);
  ex::PrintSeries(std::cout, "stability ratio r_k per subcarrier (Eq. 13)",
                  "subcarrier", "r_k", t, stability);
  std::cout << "distinct subcarriers that ever hold max-mu: " << distinct
            << " / " << num_sc << "\n"
            << "max r_k: " << ex::Fmt(dsp::Max(stability)) << ", min r_k: "
            << ex::Fmt(dsp::Min(stability)) << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = ex::SmokeMode(argc, argv);
  (void)smoke;
  const ex::LinkCase lc = ex::MakeShortWallLink();  // the paper's 3 m link
  auto sim = ex::MakeSimulator(lc);
  Rng rng(4);

  // Fig. 4a: two packets, same location.
  ex::PrintBanner(std::cout, "Fig. 4a — mu from two packets, same location");
  const geometry::Vec2 location_a{3.0, 1.6};
  const auto few = MuSession(sim, location_a, rng, 200);
  const auto& packet_1 = few[0];
  const auto& packet_200 = few[199];
  std::cout << "packet 1:   max-mu subcarrier = " << ArgMax(packet_1) + 1
            << " (mu = " << ex::Fmt(packet_1[ArgMax(packet_1)], 4) << ")\n";
  std::cout << "packet 200: max-mu subcarrier = " << ArgMax(packet_200) + 1
            << " (mu = " << ex::Fmt(packet_200[ArgMax(packet_200)], 4)
            << ")\n";
  std::size_t changes = 0;
  for (std::size_t i = 1; i < few.size(); ++i) {
    if (ArgMax(few[i]) != ArgMax(few[i - 1])) ++changes;
  }
  std::cout << "max-mu subcarrier changes across 200 packets: " << changes
            << " (paper: the maximal subcarrier varies packet to packet)\n";

  // Fig. 4b / 4c: 5000-packet distributions at two locations.
  ReportLocation("Fig. 4b — 5000 packets, human location A (near LOS)",
                 MuSession(sim, {3.0, 1.1}, rng, 5000));
  ReportLocation("Fig. 4c — 5000 packets, human location B (off LOS)",
                 MuSession(sim, {2.2, 2.4}, rng, 5000));

  std::cout << "\n(paper: subcarriers with large mu can be temporally stable "
               "at one location\nand fluctuate at another — hence Eq. 15 "
               "weights combine mean mu with r_k)\n";
  return 0;
}
