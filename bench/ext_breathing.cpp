// Extension — respiration monitoring (the intro's refs [9][10]: Wi-Sleep,
// WiBreathe). Sweeps respiration rates and sleeper positions, reporting the
// estimation error and detection confidence of the periodogram estimator.
#include <iostream>

#include "common/rng.h"
#include "core/breath.h"
#include "dsp/stats.h"
#include "experiments/format.h"
#include "experiments/scenario.h"

using namespace mulink;
namespace ex = mulink::experiments;

int main(int argc, char** argv) {
  const bool smoke = ex::SmokeMode(argc, argv);
  (void)smoke;
  ex::PrintBanner(std::cout, "Extension — respiration rate estimation");

  auto lc = ex::MakeClassroomLink();
  lc.walker_bases.clear();
  auto config = ex::DefaultSimConfig();
  config.interference_entry_prob = 0.0;  // a quiet bedroom, not an office
  config.slow_gain_drift_db = 0.05;
  config.human_sway_sigma_m = 0.001;
  config.background_jitter_m = 0.001;
  auto sim = ex::MakeSimulator(lc, config);
  Rng rng(17);

  // (a) Rate sweep at a fixed bedside position, 20 s captures at 50 pkt/s.
  {
    std::vector<std::vector<std::string>> rows;
    for (double bpm : {10.0, 14.0, 18.0, 24.0, 30.0}) {
      propagation::HumanBody sleeper;
      sleeper.position = {3.0, 4.7};
      sleeper.breathing_amplitude_m = 0.006;
      sleeper.breathing_rate_hz = bpm / 60.0;
      const auto session = sim.CaptureSession(1000, sleeper, rng);
      const auto estimate = core::EstimateBreathing(session, 50.0);
      rows.push_back({ex::Fmt(bpm, 0), ex::Fmt(estimate.rate_hz * 60.0, 1),
                      ex::Fmt(std::abs(estimate.rate_hz * 60.0 - bpm), 1),
                      ex::Fmt(estimate.confidence, 1)});
    }
    ex::PrintTable(std::cout, "rate sweep (sleeper 0.7 m off the LOS)",
                   {"true bpm", "estimated bpm", "error bpm", "confidence"},
                   rows);
  }

  // (b) Distance sweep at a fixed 15 breaths/min.
  {
    std::vector<std::vector<std::string>> rows;
    for (double lateral : {0.5, 1.0, 2.0, 3.0}) {
      propagation::HumanBody sleeper;
      sleeper.position = {3.0, 4.0 + lateral};
      sleeper.breathing_amplitude_m = 0.006;
      sleeper.breathing_rate_hz = 0.25;
      const auto session = sim.CaptureSession(1000, sleeper, rng);
      const auto estimate = core::EstimateBreathing(session, 50.0);
      rows.push_back(
          {ex::Fmt(lateral, 1), ex::Fmt(estimate.rate_hz * 60.0, 1),
           ex::Fmt(estimate.confidence, 1),
           estimate.confidence > 3.0 ? "tracked" : "lost"});
    }
    // Reference row: empty room.
    const auto empty = sim.CaptureSession(1000, std::nullopt, rng);
    const auto baseline = core::EstimateBreathing(empty, 50.0);
    rows.push_back({"(empty)", "-", ex::Fmt(baseline.confidence, 1), "quiet"});
    ex::PrintTable(std::cout, "lateral-distance sweep (15 bpm)",
                   {"lateral m", "estimated bpm", "confidence", "status"},
                   rows);
  }
  std::cout << "Shape: mm-scale chest motion stays visible across the room "
               "(the periodic\nreflection of Eq. 7/8 needs only to beat the "
               "noise floor at ONE frequency bin),\nwhile the empty room "
               "shows no periodicity — matching Wi-Sleep/WiBreathe's\n"
               "whole-room monitoring claims.\n";
  return 0;
}
