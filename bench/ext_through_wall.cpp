// Extension — through-wall detection (the intro's "can work through-walls"
// selling point, exercised end to end).
//
// One space split by a drywall partition: the AP sits in the west room, the
// receiver in the east room. Detection rates for people at a grid of
// positions in each room, per scheme.
#include <iostream>

#include "common/rng.h"
#include "core/detector.h"
#include "experiments/format.h"
#include "experiments/scenario.h"

using namespace mulink;
namespace ex = mulink::experiments;

int main(int argc, char** argv) {
  const bool smoke = ex::SmokeMode(argc, argv);
  (void)smoke;
  ex::PrintBanner(std::cout, "Extension — through-wall human detection");

  const auto lc = ex::MakeThroughWallLink();
  std::cout << "layout: AP at (" << lc.tx.x << "," << lc.tx.y
            << ") west room | drywall partition at x=3 | RX at (" << lc.rx.x
            << "," << lc.rx.y << ") east room\n\n";

  // Probe grids per room (east = receiver's room, west = AP's room).
  std::vector<geometry::Vec2> east, west;
  for (double x : {3.8, 4.6, 5.4}) {
    for (double y : {1.5, 3.0, 4.5}) east.push_back({x, y});
  }
  for (double x : {0.8, 1.6, 2.4}) {
    for (double y : {1.5, 3.0, 4.5}) west.push_back({x, y});
  }

  std::vector<std::vector<std::string>> rows;
  for (auto scheme : {core::DetectionScheme::kBaseline,
                      core::DetectionScheme::kSubcarrierWeighting,
                      core::DetectionScheme::kSubcarrierAndPathWeighting}) {
    auto sim = ex::MakeSimulator(lc);
    Rng rng(81);
    core::DetectorConfig config;
    config.scheme = scheme;
    auto detector = core::Detector::Calibrate(
        sim.CaptureSession(400, std::nullopt, rng), sim.band(), sim.array(),
        config);
    std::vector<std::vector<wifi::CsiPacket>> empties;
    for (int i = 0; i < 12; ++i) {
      empties.push_back(sim.CaptureSession(25, std::nullopt, rng));
    }
    detector.CalibrateThreshold(empties);

    const auto rate = [&](const std::vector<geometry::Vec2>& spots) {
      int hits = 0, total = 0;
      for (const auto& pos : spots) {
        propagation::HumanBody body;
        body.position = pos;
        for (int i = 0; i < 4; ++i) {
          ++total;
          if (detector.Detect(sim.CaptureSession(25, body, rng))) ++hits;
        }
      }
      return 100.0 * hits / total;
    };
    int false_alarms = 0;
    for (int i = 0; i < 20; ++i) {
      if (detector.Detect(sim.CaptureSession(25, std::nullopt, rng))) {
        ++false_alarms;
      }
    }
    rows.push_back({core::ToString(scheme), ex::Fmt(rate(east), 1),
                    ex::Fmt(rate(west), 1),
                    ex::Fmt(100.0 * false_alarms / 20.0, 1)});
  }
  ex::PrintTable(std::cout, "through-wall detection rate %",
                 {"scheme", "east room (RX side)", "west room (AP side)",
                  "idle FA %"},
                 rows);
  std::cout << "Both rooms remain detectable through drywall. The naive "
               "baseline buys its\nrates with a heavy idle false-alarm "
               "bill; the weighted schemes detect on both\nsides of the "
               "partition at a fraction of the false alarms.\n";
  return 0;
}
