// Extension — localization bake-off: fingerprinting (the paper's ref [15]
// approach, site-survey-heavy, cell-level) vs Radio Tomographic Imaging
// (ref [3], infrastructure-heavy, metric), both on the classroom.
#include <iostream>

#include "common/rng.h"
#include "core/fingerprint.h"
#include "core/rti.h"
#include "dsp/stats.h"
#include "experiments/format.h"
#include "experiments/scenario.h"

using namespace mulink;
namespace ex = mulink::experiments;

int main(int argc, char** argv) {
  const bool smoke = ex::SmokeMode(argc, argv);
  (void)smoke;
  ex::PrintBanner(std::cout,
                  "Extension — fingerprint vs tomographic localization");

  auto lc = ex::MakeClassroomLink();
  lc.walker_bases.clear();
  auto sim_config = ex::DefaultSimConfig();
  sim_config.interference_entry_prob = 0.0;
  sim_config.slow_gain_drift_db = 0.05;

  // Shared evaluation cells: a 2 x 3 grid of 2 m cells across the room.
  struct Cell {
    std::string label;
    geometry::Vec2 center;
  };
  std::vector<Cell> cells;
  for (int gx = 0; gx < 2; ++gx) {
    for (int gy = 0; gy < 3; ++gy) {
      cells.push_back({"cell-" + std::to_string(gx) + std::to_string(gy),
                       {1.5 + 3.0 * gx, 1.5 + 2.5 * gy}});
    }
  }

  // --- Fingerprinting on the single 3-antenna link.
  double fp_cell_accuracy = 0.0;
  double fp_mean_error = 0.0;
  {
    auto sim = ex::MakeSimulator(lc, sim_config);
    Rng rng(71);
    core::FingerprintLocalizer localizer;
    for (const auto& cell : cells) {
      propagation::HumanBody body;
      body.position = cell.center;
      for (int i = 0; i < 8; ++i) {
        localizer.AddTrainingWindow(cell.label,
                                    sim.CaptureSession(25, body, rng));
      }
    }
    int correct = 0, total = 0;
    for (const auto& cell : cells) {
      propagation::HumanBody body;
      body.position = cell.center;
      for (int trial = 0; trial < 5; ++trial) {
        ++total;
        const auto result = localizer.Locate(sim.CaptureSession(25, body, rng));
        if (result.label == cell.label) {
          ++correct;
        } else {
          for (const auto& other : cells) {
            if (other.label == result.label) {
              fp_mean_error += geometry::Distance(other.center, cell.center);
            }
          }
        }
      }
    }
    fp_cell_accuracy = 100.0 * correct / total;
    fp_mean_error /= static_cast<double>(total);
  }

  // --- RTI with 8 perimeter nodes.
  double rti_median_error = 0.0;
  {
    const auto nodes =
        core::PerimeterNodes(lc.room.width(), lc.room.depth(), 8, 0.5);
    core::RtiConfig config;
    config.ellipse_excess_m = 0.3;
    const core::RtiImager imager(nodes, lc.room.width(), lc.room.depth(),
                                 config);
    std::vector<nic::ChannelSimulator> sims;
    for (const auto& [a, b] : imager.links()) {
      sims.emplace_back(lc.room, nodes[a], nodes[b],
                        wifi::UniformLinearArray(1, kWavelength / 2.0, 0.0),
                        wifi::BandPlan::Intel5300Channel11(), sim_config);
    }
    Rng rng(72);
    std::vector<double> errors;
    for (const auto& cell : cells) {
      std::vector<double> delta(imager.links().size(), 0.0);
      for (std::size_t l = 0; l < sims.size(); ++l) {
        const auto empty = sims[l].CaptureSession(20, std::nullopt, rng);
        propagation::HumanBody body;
        body.position = cell.center;
        const auto occupied = sims[l].CaptureSession(20, body, rng);
        double p0 = 0.0, p1 = 0.0;
        for (const auto& packet : empty) p0 += packet.TotalPower();
        for (const auto& packet : occupied) p1 += packet.TotalPower();
        delta[l] = std::max(0.0, 10.0 * std::log10(p0 / p1));
      }
      errors.push_back(geometry::Distance(
          imager.LocateMax(imager.Reconstruct(delta)), cell.center));
    }
    rti_median_error = dsp::Median(errors);
  }

  ex::PrintTable(
      std::cout, "localization comparison (6 cells, classroom)",
      {"approach", "infrastructure", "survey effort", "result"},
      {{"fingerprint k-NN [15]", "1 link (2 radios)", "8 windows x 6 cells",
        ex::Fmt(fp_cell_accuracy, 0) + "% cell accuracy (" +
            ex::Fmt(fp_mean_error, 2) + " m mean confusion)"},
       {"RTI [3]", "8 radios, 28 links", "per-link empty profile",
        ex::Fmt(rti_median_error, 2) + " m median error (metric)"}});
  std::cout << "The trade the paper navigates between: fingerprints are "
               "cheap in hardware but\nneed a labour-intensive site survey "
               "(its words); RTI needs no survey but an\norder more radios. "
               "The paper's contribution sits before both — making the\n"
               "detection primitive reliable on ONE link.\n";
  return 0;
}
