// Fig. 8 — Detection rate per testing case (the 5 links of Fig. 6) at the
// global balanced-accuracy threshold derived from the Fig. 7 ROC.
//
// Paper shape: no dramatic gap between cases; case 3 (short vacant link with
// a strong LOS) is slightly best for all schemes, and path weighting brings
// only marginal gain there (little NLOS to exploit); case 1 can even dip
// slightly with path weighting due to angle estimation errors.
#include <iostream>

#include "experiments/campaign.h"
#include "experiments/format.h"
#include "experiments/parallel_runner.h"

using namespace mulink;
namespace ex = mulink::experiments;

int main(int argc, char** argv) {
  const bool smoke = ex::SmokeMode(argc, argv);
  (void)smoke;
  ex::PrintBanner(std::cout, "Fig. 8 — Detection rate per case");

  ex::CampaignConfig config;
  config.packets_per_location = smoke ? 75 : 600;
  config.calibration_packets = smoke ? 100 : 400;
  config.empty_packets = smoke ? 150 : 1200;
  config.seed = 8;

  const ex::ParallelCampaignRunner runner;
  const auto result = runner.RunPaper(config);
  const auto cases = ex::MakePaperCases();

  std::vector<std::vector<std::string>> rows;
  for (std::size_t ci = 0; ci < cases.size(); ++ci) {
    std::vector<std::string> row = {cases[ci].name};
    for (const auto& scheme : result.schemes) {
      const auto best = scheme.Roc().BestBalancedAccuracy();
      const double rate = scheme.DetectionRate(
          best.threshold, [&](const ex::ScoredWindow& w) {
            return w.case_index == static_cast<int>(ci);
          });
      row.push_back(ex::Fmt(rate * 100.0, 1));
    }
    rows.push_back(std::move(row));
  }
  ex::PrintTable(std::cout, "detection rate % at the global balanced threshold",
                 {"case", "baseline", "subcarrier", "subcarrier+path"}, rows);

  std::cout << "Paper shape: all cases comparable; case 3 best; path "
               "weighting adds little on case 3\n(strong LOS, little NLOS) "
               "and can dip slightly on case 1 (angle errors).\n";
  return 0;
}
