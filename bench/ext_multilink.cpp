// Extension — one adapted link vs a bundle of naive links.
//
// The paper's introduction frames its contribution against prior art that
// covers a space by densely deploying links, each only sensitive on its LOS.
// This bench plays that comparison out in one room: a single
// multipath-adapted link (subcarrier + path weighting) against one / two
// naive baseline links, measured over a coverage grid spanning the room.
#include <iostream>
#include <memory>

#include "common/rng.h"
#include "core/fusion.h"
#include "experiments/format.h"
#include "experiments/scenario.h"
#include "experiments/workload.h"

using namespace mulink;
namespace ex = mulink::experiments;

namespace {

struct LinkRig {
  std::unique_ptr<nic::ChannelSimulator> sim;
  std::optional<core::Detector> detector;
};

LinkRig MakeRig(const ex::LinkCase& lc, core::DetectionScheme scheme,
                Rng& rng) {
  LinkRig rig;
  rig.sim = std::make_unique<nic::ChannelSimulator>(ex::MakeSimulator(lc));
  core::DetectorConfig config;
  config.scheme = scheme;
  rig.detector = core::Detector::Calibrate(
      rig.sim->CaptureSession(400, std::nullopt, rng), rig.sim->band(),
      rig.sim->array(), config);
  std::vector<std::vector<wifi::CsiPacket>> empties;
  for (int i = 0; i < 12; ++i) {
    empties.push_back(rig.sim->CaptureSession(25, std::nullopt, rng));
  }
  rig.detector->CalibrateThreshold(empties);
  return rig;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = ex::SmokeMode(argc, argv);
  (void)smoke;
  ex::PrintBanner(std::cout,
                  "Extension — single adapted link vs naive link bundles");

  // Room A with three candidate links.
  const auto base = ex::MakePaperCases()[0];  // room A geometry + walkers
  ex::LinkCase link_a = base;                 // 5 m link along the north side
  ex::LinkCase link_b = base;
  link_b.tx = {3.5, 1.0};
  link_b.rx = {3.5, 7.8};  // vertical crossing link
  link_b.name = "crossing-link";

  Rng rng(61);
  auto adapted =
      MakeRig(link_a, core::DetectionScheme::kSubcarrierAndPathWeighting, rng);
  auto naive_a = MakeRig(link_a, core::DetectionScheme::kBaseline, rng);
  auto naive_b = MakeRig(link_b, core::DetectionScheme::kBaseline, rng);

  core::MultiLinkDetector bundle(core::FusionRule::kAny);
  bundle.AddLink(*naive_a.detector);
  bundle.AddLink(*naive_b.detector);

  // Coverage grid across the whole room.
  int grid_total = 0;
  int adapted_hits = 0, naive_one_hits = 0, bundle_hits = 0;
  for (double x = 1.0; x <= 6.0; x += 1.0) {
    for (double y = 1.0; y <= 8.0; y += 1.4) {
      propagation::HumanBody body;
      body.position = {x, y};
      ++grid_total;
      if (adapted.detector->Detect(
              adapted.sim->CaptureSession(25, body, rng))) {
        ++adapted_hits;
      }
      const auto window_a = naive_a.sim->CaptureSession(25, body, rng);
      const auto window_b = naive_b.sim->CaptureSession(25, body, rng);
      if (naive_a.detector->Detect(window_a)) ++naive_one_hits;
      if (bundle.Detect({window_a, window_b})) ++bundle_hits;
    }
  }

  // Idle false alarms per rig over fresh empty windows.
  int adapted_fa = 0, naive_one_fa = 0, bundle_fa = 0;
  const int idle_windows = 40;
  for (int i = 0; i < idle_windows; ++i) {
    if (adapted.detector->Detect(
            adapted.sim->CaptureSession(25, std::nullopt, rng))) {
      ++adapted_fa;
    }
    const auto window_a = naive_a.sim->CaptureSession(25, std::nullopt, rng);
    const auto window_b = naive_b.sim->CaptureSession(25, std::nullopt, rng);
    if (naive_a.detector->Detect(window_a)) ++naive_one_fa;
    if (bundle.Detect({window_a, window_b})) ++bundle_fa;
  }

  const auto pct = [](int n, int d) {
    return ex::Fmt(100.0 * n / d, 1);
  };
  ex::PrintTable(
      std::cout, "room-wide coverage and idle false alarms",
      {"deployment", "grid coverage %", "idle FA %"},
      {{"1 naive baseline link", pct(naive_one_hits, grid_total),
        pct(naive_one_fa, idle_windows)},
       {"2 naive links (any-fusion)", pct(bundle_hits, grid_total),
        pct(bundle_fa, idle_windows)},
       {"1 adapted link (subcarrier+path)", pct(adapted_hits, grid_total),
        pct(adapted_fa, idle_windows)}});
  std::cout << "The paper's pitch: adaptation makes ONE link cover what "
               "naive deployments need\nseveral links for — and any-fusion "
               "of naive links sums their false alarms.\n";
  return 0;
}
