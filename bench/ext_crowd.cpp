// Extension — crowd counting in the style of Electronic Frog Eye (the
// paper's ref [29]): the perturbed-subcarrier fraction grows and saturates
// with head count; a saturating regression inverts it.
#include <iostream>

#include "common/rng.h"
#include "core/crowd.h"
#include "dsp/stats.h"
#include "experiments/format.h"
#include "experiments/scenario.h"

using namespace mulink;
namespace ex = mulink::experiments;

int main(int argc, char** argv) {
  const bool smoke = ex::SmokeMode(argc, argv);
  (void)smoke;
  ex::PrintBanner(std::cout, "Extension — crowd counting (perturbed fraction)");

  auto lc = ex::MakeClassroomLink();
  lc.walker_bases.clear();
  auto config = ex::DefaultSimConfig();
  config.interference_entry_prob = 0.0;
  auto sim = ex::MakeSimulator(lc, config);
  Rng rng(41);

  const std::vector<geometry::Vec2> spots = {
      {2.0, 4.3}, {3.5, 3.6}, {4.2, 4.6}, {2.8, 5.0},
      {1.6, 3.4}, {3.0, 2.8}, {4.5, 5.2}};
  const auto people = [&](std::size_t count) {
    std::vector<propagation::HumanBody> crowd;
    for (std::size_t i = 0; i < count && i < spots.size(); ++i) {
      propagation::HumanBody body;
      body.position = spots[i];
      crowd.push_back(body);
    }
    return crowd;
  };

  auto estimator =
      core::CrowdEstimator::Calibrate(sim.CaptureSession(300, std::nullopt, rng));

  // Train on four windows per count 0..5 (survey noise averages out).
  std::vector<std::pair<std::size_t, std::vector<wifi::CsiPacket>>> labelled;
  for (std::size_t count = 0; count <= 5; ++count) {
    for (int repeat = 0; repeat < 4; ++repeat) {
      labelled.emplace_back(count,
                            sim.CaptureSessionMulti(50, people(count), rng));
    }
  }
  estimator.Train(labelled);
  std::cout << "fitted model: fraction = " << ex::Fmt(estimator.fraction_scale())
            << " * (1 - exp(-" << ex::Fmt(estimator.rate()) << " * n))\n\n";

  // Evaluate on fresh windows, 6 trials each.
  std::vector<std::vector<std::string>> rows;
  for (std::size_t truth = 0; truth <= 6; ++truth) {
    std::vector<double> fractions, estimates;
    for (int trial = 0; trial < 6; ++trial) {
      const auto window = sim.CaptureSessionMulti(50, people(truth), rng);
      fractions.push_back(estimator.PerturbedFraction(window));
      estimates.push_back(
          static_cast<double>(estimator.EstimateCount(window)));
    }
    rows.push_back({std::to_string(truth),
                    ex::Fmt(dsp::Mean(fractions), 3),
                    ex::Fmt(dsp::Median(estimates), 1),
                    ex::Fmt(dsp::Max(estimates) - dsp::Min(estimates), 0)});
  }
  ex::PrintTable(std::cout, "head-count estimation (fresh windows)",
                 {"true count", "mean perturbed fraction", "median estimate",
                  "estimate spread"},
                 rows);
  std::cout << "Shape per [29]: the perturbed fraction rises monotonically "
               "with head count and\nsaturates as bodies shadow overlapping "
               "channel structure. Counts are usable up\nto the saturation "
               "knee (~4 here); past it the inverse diverges and a deployment"
               "\nshould report 'many' (the capped estimate) instead of a "
               "number.\n";
  return 0;
}
