// Ablation — antenna count (the paper's future-work direction: larger
// arrays sharpen angle estimation and stabilize path weighting).
//
// Sweeps the RX array size for (a) AoA accuracy of the static wall
// reflection and (b) combined-scheme detection on one campaign case.
#include <cmath>
#include <iostream>

#include "common/rng.h"
#include "core/music.h"
#include "core/sanitize.h"
#include "dsp/stats.h"
#include "experiments/campaign.h"
#include "experiments/format.h"

using namespace mulink;
namespace ex = mulink::experiments;

int main(int argc, char** argv) {
  const bool smoke = ex::SmokeMode(argc, argv);
  (void)smoke;
  ex::PrintBanner(std::cout, "Ablation — antenna count");

  // (a) AoA accuracy of the static reflected path on the short wall link.
  {
    const ex::LinkCase lc = ex::MakeShortWallLink();
    // Ground truth: strongest wall-reflection angle from the ray tracer.
    auto reference = ex::MakeSimulator(lc);
    double truth_deg = 0.0, best_gain = 0.0;
    for (const auto& path : reference.StaticPaths()) {
      if (path.kind == propagation::PathKind::kWallReflection &&
          path.gain_at_center > best_gain) {
        const double theta =
            RadToDeg(reference.array().BroadsideAngle(
                path.arrival_direction_rad));
        if (std::abs(theta) < 75.0) {
          best_gain = path.gain_at_center;
          truth_deg = theta;
        }
      }
    }

    std::vector<std::vector<std::string>> rows;
    for (std::size_t antennas : {2u, 3u, 4u, 8u}) {
      auto sim = ex::MakeSimulator(lc, ex::DefaultSimConfig(), antennas);
      Rng rng(21);
      std::vector<double> errors;
      for (int trial = 0; trial < 20; ++trial) {
        const auto clean = core::SanitizePhase(
            sim.CaptureSession(50, std::nullopt, rng), sim.band());
        core::MusicConfig config;
        config.num_sources = antennas >= 3 ? 2 : 1;
        const auto spectrum = core::ComputeMusicSpectrum(
            clean, sim.array(), sim.band(), config);
        // Nearest peak to the truth.
        double best_err = 180.0;
        for (double peak : spectrum.PeakAngles(3)) {
          best_err = std::min(best_err, std::abs(peak - truth_deg));
        }
        errors.push_back(best_err);
      }
      rows.push_back({std::to_string(antennas),
                      ex::Fmt(dsp::Median(errors), 1),
                      ex::Fmt(dsp::Quantile(errors, 0.9), 1)});
    }
    std::cout << "truth: wall reflection at " << ex::Fmt(truth_deg, 1)
              << " deg\n";
    ex::PrintTable(std::cout, "AoA error of the static wall reflection",
                   {"antennas", "median_err_deg", "p90_err_deg"}, rows);
  }

  // (b) Combined-scheme detection vs antenna count on case 1.
  {
    const auto lc = ex::MakePaperCases()[0];
    std::vector<std::vector<std::string>> rows;
    for (std::size_t antennas : {2u, 3u, 4u, 8u}) {
      ex::CampaignConfig config;
      config.packets_per_location = smoke ? 75 : 300;
      config.calibration_packets = smoke ? 100 : 300;
      config.empty_packets = smoke ? 150 : 900;
      config.seed = 22;

      // Campaign with a custom antenna count: build the spots and run.
      auto sim_config = ex::DefaultSimConfig();
      // RunCampaign always builds 3-antenna simulators; do it manually here.
      auto simulator = ex::MakeSimulator(lc, sim_config, antennas);
      Rng rng(23);
      const auto calibration =
          simulator.CaptureSession(config.calibration_packets, std::nullopt,
                                   rng);
      core::DetectorConfig dc;
      dc.scheme = core::DetectionScheme::kSubcarrierAndPathWeighting;
      dc.music.num_sources = antennas >= 3 ? 2 : 1;
      auto detector = core::Detector::Calibrate(calibration, simulator.band(),
                                                simulator.array(), dc);
      std::vector<double> pos, neg;
      for (std::size_t i = 0; i < config.empty_packets / 25; ++i) {
        neg.push_back(
            detector.Score(simulator.CaptureSession(25, std::nullopt, rng)));
      }
      for (const auto& spot : ex::Grid3x3(lc)) {
        propagation::HumanBody body;
        body.position = spot.position;
        for (std::size_t i = 0; i < config.packets_per_location / 25; ++i) {
          pos.push_back(
              detector.Score(simulator.CaptureSession(25, body, rng)));
        }
      }
      const auto roc = core::ComputeRoc(pos, neg);
      const auto best = roc.BestBalancedAccuracy();
      rows.push_back({std::to_string(antennas), ex::Fmt(roc.Auc()),
                      ex::Fmt(best.true_positive_rate * 100.0, 1),
                      ex::Fmt(best.false_positive_rate * 100.0, 1)});
    }
    ex::PrintTable(std::cout, "combined scheme vs antenna count (case 1)",
                   {"antennas", "AUC", "TP %", "FP %"}, rows);
  }
  std::cout << "Expected: accuracy and AoA precision improve with aperture — "
               "the paper's\nmotivation for larger arrays / SAR.\n";
  return 0;
}
