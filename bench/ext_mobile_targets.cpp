// Extension — mobile targets: mean vs variance statistics (Sec. III cites
// [18]: mean of the RSS difference for stationary targets, variance for
// mobile ones). Compares all four schemes on walking intruders.
#include <iostream>

#include "common/rng.h"
#include "core/detector.h"
#include "core/roc.h"
#include "experiments/format.h"
#include "experiments/scenario.h"
#include "experiments/workload.h"

using namespace mulink;
namespace ex = mulink::experiments;

int main(int argc, char** argv) {
  const bool smoke = ex::SmokeMode(argc, argv);
  (void)smoke;
  ex::PrintBanner(std::cout, "Extension — detecting WALKING intruders");

  const auto cases = ex::MakePaperCases();
  std::vector<std::vector<std::string>> rows;

  for (auto scheme : {core::DetectionScheme::kBaseline,
                      core::DetectionScheme::kSubcarrierWeighting,
                      core::DetectionScheme::kSubcarrierAndPathWeighting,
                      core::DetectionScheme::kVarianceMobile}) {
    std::vector<double> positives, negatives;
    for (const auto& lc : cases) {
      auto sim = ex::MakeSimulator(lc);
      Rng rng(41);
      core::DetectorConfig config;
      config.scheme = scheme;
      auto detector = core::Detector::Calibrate(
          sim.CaptureSession(smoke ? 100 : 400, std::nullopt, rng),
          sim.band(), sim.array(), config);

      // Negatives: empty-room windows.
      for (int i = 0; i < (smoke ? 8 : 32); ++i) {
        negatives.push_back(
            detector.Score(sim.CaptureSession(25, std::nullopt, rng)));
      }
      // Positives: walks crossing the link at several points and speeds.
      for (double cross_t : {0.3, 0.5, 0.7}) {
        for (double speed : {0.6, 1.2}) {
          const auto trace = ex::CrossLinkWalk(lc, cross_t, 1.8);
          propagation::HumanBody body;
          const auto walk = sim.CaptureWalk(smoke ? 50 : 150, body,
                                            trace.from, trace.to, speed, rng);
          for (std::size_t start = 0; start + 25 <= walk.size();
               start += 25) {
            positives.push_back(detector.Score(std::vector<wifi::CsiPacket>(
                walk.begin() + static_cast<std::ptrdiff_t>(start),
                walk.begin() + static_cast<std::ptrdiff_t>(start + 25))));
          }
        }
      }
    }
    const auto roc = core::ComputeRoc(positives, negatives);
    const auto best = roc.BestBalancedAccuracy();
    rows.push_back({core::ToString(scheme), ex::Fmt(roc.Auc()),
                    ex::Fmt(best.true_positive_rate * 100.0, 1),
                    ex::Fmt(best.false_positive_rate * 100.0, 1)});
  }

  ex::PrintTable(std::cout,
                 "walking intruders, all 5 cases (windows during the walk "
                 "= positives)",
                 {"scheme", "AUC", "TP %", "FP %"}, rows);
  std::cout << "Expected: the variance statistic is competitive for moving "
               "targets (its design\npoint), while remaining blind to "
               "perfectly still ones — pick per deployment.\n";
  return 0;
}
