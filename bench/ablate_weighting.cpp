// Ablation — which part of Eq. 15 earns its keep?
//
// Sweeps the subcarrier-weighting scheme over: uniform weights (no
// weighting), mean-mu only (Eq. 12), stability ratio only, and the paper's
// product (Eq. 15); each with mean vs median window aggregation. Reported
// as balanced-accuracy operating points on the full 5-case campaign.
#include <iostream>

#include "experiments/campaign.h"
#include "experiments/format.h"

using namespace mulink;
namespace ex = mulink::experiments;

int main(int argc, char** argv) {
  const bool smoke = ex::SmokeMode(argc, argv);
  (void)smoke;
  ex::PrintBanner(std::cout, "Ablation — subcarrier weighting design (Eq. 15)");

  const auto cases = ex::MakePaperCases();
  std::vector<std::vector<ex::HumanSpot>> spots;
  for (const auto& lc : cases) spots.push_back(ex::Grid3x3(lc));

  std::vector<std::vector<std::string>> rows;
  for (auto mode : {core::WeightingMode::kUniform,
                    core::WeightingMode::kMeanMuOnly,
                    core::WeightingMode::kStabilityOnly,
                    core::WeightingMode::kMeanMuTimesStability}) {
    for (bool robust : {false, true}) {
      ex::CampaignConfig config;
      config.packets_per_location = smoke ? 75 : 400;
      config.calibration_packets = smoke ? 100 : 400;
      config.empty_packets = smoke ? 150 : 1000;
      config.seed = 15;
      config.detector.weighting_mode = mode;
      config.detector.robust_window_aggregate = robust;

      const auto result = ex::RunCampaign(
          cases, spots, {core::DetectionScheme::kSubcarrierWeighting},
          config);
      const auto roc = result.schemes[0].Roc();
      const auto best = roc.BestBalancedAccuracy();
      rows.push_back({core::ToString(mode), robust ? "median" : "mean",
                      ex::Fmt(roc.Auc()),
                      ex::Fmt(best.true_positive_rate * 100.0, 1),
                      ex::Fmt(best.false_positive_rate * 100.0, 1)});
    }
  }
  ex::PrintTable(std::cout, "subcarrier scheme ablation",
                 {"weights", "aggregate", "AUC", "TP %", "FP %"}, rows);
  std::cout << "Reading: median aggregation dominates mean under bursty "
               "interference; the\nmu-based weights (mean-mu and the Eq. 15 "
               "product) buy ~10 points of TP over\nuniform, and the "
               "stability ratio r_k is what keeps FP low. In this simulated\n"
               "substrate r_k does more of the FP work than the paper's "
               "testbed suggests;\nthe Eq. 15 product remains the default "
               "for fidelity.\n";
  return 0;
}
