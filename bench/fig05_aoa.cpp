// Fig. 5 — Impact of angle-of-arrival on signal strength (3 m link near a
// concrete wall).
//
//  (b) MUSIC pseudospectrum of the static link with a 3-antenna array: one
//      peak at the LOS (broadside) and one at the wall reflection.
//  (c) Per-subcarrier RSS change for 16 human locations on a 1 m arc around
//      the receiver (-90..90 degrees): largest change along the LOS
//      direction, a secondary bump along the NLOS direction.
#include <algorithm>
#include <iostream>

#include "common/rng.h"
#include "core/music.h"
#include "core/sanitize.h"
#include "dsp/stats.h"
#include "experiments/format.h"
#include "experiments/scenario.h"
#include "experiments/workload.h"

using namespace mulink;
namespace ex = mulink::experiments;

int main(int argc, char** argv) {
  const bool smoke = ex::SmokeMode(argc, argv);
  (void)smoke;
  const ex::LinkCase lc = ex::MakeShortWallLink();
  auto sim = ex::MakeSimulator(lc);
  Rng rng(5);

  ex::PrintBanner(std::cout, "Fig. 5b — MUSIC pseudospectrum (static link)");
  const auto calibration =
      core::SanitizePhase(sim.CaptureSession(200, std::nullopt, rng),
                          sim.band());
  const auto spectrum =
      core::ComputeMusicSpectrum(calibration, sim.array(), sim.band());
  // Print in dB relative to the peak, downsampled to 5-degree steps.
  const double peak = dsp::Max(spectrum.power);
  std::vector<double> xs, ys;
  for (std::size_t i = 0; i < spectrum.theta_deg.size(); i += 5) {
    xs.push_back(spectrum.theta_deg[i]);
    ys.push_back(10.0 * std::log10(std::max(spectrum.power[i] / peak,
                                            1e-12)));
  }
  ex::PrintSeries(std::cout, "pseudospectrum", "angle_deg", "power_db_rel",
                  xs, ys);
  std::cout << "peaks:";
  for (double angle : spectrum.PeakAngles(3)) {
    std::cout << " " << ex::Fmt(angle, 1) << "deg";
  }
  std::cout << "\n(paper: two peaks — the LOS and the wall reflection)\n";

  // Ground truth from the ray tracer for reference.
  std::cout << "ray-tracer path angles:";
  for (const auto& path : sim.StaticPaths()) {
    const double theta =
        RadToDeg(sim.array().BroadsideAngle(path.arrival_direction_rad));
    std::cout << " " << ex::Fmt(theta, 1) << "deg(" << ToString(path.kind)
              << ")";
  }
  std::cout << "\n";

  ex::PrintBanner(std::cout, "Fig. 5c — RSS change over arrival angles");
  // Static profile per (antenna, subcarrier).
  const std::size_t num_ant = calibration[0].NumAntennas();
  const std::size_t num_sc = sim.band().NumSubcarriers();
  std::vector<std::vector<double>> profile(num_ant,
                                           std::vector<double>(num_sc, 0.0));
  for (std::size_t m = 0; m < num_ant; ++m) {
    for (std::size_t k = 0; k < num_sc; ++k) {
      double p = 0.0;
      for (const auto& packet : calibration) p += packet.SubcarrierPower(m, k);
      profile[m][k] = 10.0 * std::log10(
                          std::max(p / static_cast<double>(calibration.size()),
                                   1e-30));
    }
  }

  std::vector<double> angles;
  for (int a = -90; a <= 90; a += 12) angles.push_back(a);
  const auto spots = ex::AngularArc(lc, 1.0, angles);

  std::vector<double> angle_x, change_y;
  for (const auto& spot : spots) {
    propagation::HumanBody body;
    body.position = spot.position;
    const auto clean =
        core::SanitizePhase(sim.CaptureSession(150, body, rng), sim.band());
    // Median power per subcarrier (robust to interference bursts), averaged
    // across the three antennas as in the paper's Fig. 5c.
    double mean_abs_change = 0.0;
    std::vector<double> powers(clean.size());
    for (std::size_t m = 0; m < num_ant; ++m) {
      for (std::size_t k = 0; k < num_sc; ++k) {
        for (std::size_t i = 0; i < clean.size(); ++i) {
          powers[i] = clean[i].SubcarrierPower(m, k);
        }
        mean_abs_change += std::abs(
            10.0 * std::log10(std::max(dsp::Median(powers), 1e-30)) -
            profile[m][k]);
      }
    }
    angle_x.push_back(spot.angle_deg);
    change_y.push_back(mean_abs_change /
                       static_cast<double>(num_sc * num_ant));
  }
  ex::PrintSeries(std::cout, "mean |RSS change| vs human angle", "angle_deg",
                  "mean_abs_change_db", angle_x, change_y);

  // Regional shape summary (the paper's claims): dramatic changes along the
  // LOS direction; another notable change along the wall-reflection (NLOS)
  // direction; weakest on the reflection-free room side.
  // Negative angles are the wall side for this link geometry.
  double los_sum = 0.0, nlos_sum = 0.0, control_sum = 0.0;
  int los_n = 0, nlos_n = 0, control_n = 0;
  for (std::size_t i = 0; i < angle_x.size(); ++i) {
    if (std::abs(angle_x[i]) <= 20.0) {
      los_sum += change_y[i];
      ++los_n;
    } else if (angle_x[i] <= -35.0) {
      nlos_sum += change_y[i];
      ++nlos_n;
    } else if (angle_x[i] >= 35.0) {
      control_sum += change_y[i];
      ++control_n;
    }
  }
  std::cout << "mean |change| near LOS (|a|<=20):        "
            << ex::Fmt(los_sum / los_n) << " dB\n"
            << "mean |change| wall/NLOS side (a<=-35):   "
            << ex::Fmt(nlos_sum / nlos_n) << " dB\n"
            << "mean |change| room side (a>=+35):        "
            << ex::Fmt(control_sum / control_n) << " dB\n"
            << "(paper: LOS direction strongest; a second notable region "
               "along the NLOS direction)\n";
  return 0;
}
