// Serving-tier throughput benchmark: aggregate decisions/s of the sharded
// ServeCore over simulated link fleets, the headline number behind the
// ">100k decisions/s" serving claim (combined scheme, hop-1 cadence).
//
// Three kinds of evidence land in BENCH_serve.json:
//   * fleet rows — steady-state throughput over warm resident fleets
//     (10k / 100k links) plus a residency-capped churn row (1M links
//     through an LRU-bounded roster), each with the counting-allocator
//     delta per decision and per-shard queue-depth percentiles;
//   * a shard scaling curve at the 10k fleet (shards beyond
//     hardware_concurrency are oversubscription reference points, labeled
//     as such);
//   * a determinism block — per-link frame streams replayed through 1/2/4
//     shards in deterministic mode must produce byte-identical merged
//     decision logs.
//
// --smoke shrinks every fleet so CI can run the full code path in seconds.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <new>
#include <optional>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "core/detector.h"
#include "experiments/format.h"
#include "experiments/scenario.h"
#include "serve/serve.h"

// ---- Counting global allocator -------------------------------------------
// Every heap allocation in the process bumps this counter; the fleet rows
// diff it around the measured submit/drain phase to prove the hot path is
// allocation-free once the fleet is warm.

namespace {
std::atomic<std::uint64_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

// The replacement operator new above is malloc-backed, so releasing with
// std::free is correct; GCC's heuristic cannot see the pairing.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

namespace {

using namespace mulink;
namespace ex = mulink::experiments;

using Clock = std::chrono::steady_clock;

double Seconds(Clock::time_point begin, Clock::time_point end) {
  return std::chrono::duration<double>(end - begin).count();
}

// One calibrated channel-config profile shared by every fleet link.
struct ProfileKit {
  std::shared_ptr<const core::Detector> detector;
  std::vector<double> empty_scores;
  std::vector<wifi::CsiPacket> packet_pool;  // empty-room frames, reused
};

ProfileKit MakeProfile(std::size_t window_packets, std::size_t pool_size) {
  core::DetectorConfig config;
  config.scheme = core::DetectionScheme::kSubcarrierAndPathWeighting;
  config.window_packets = window_packets;

  Rng rng(7);
  const auto lc = ex::MakeClassroomLink();
  auto sim = ex::MakeSimulator(lc);
  const auto calibration = sim.CaptureSession(400, std::nullopt, rng);
  auto detector = core::Detector::Calibrate(calibration, sim.band(),
                                            sim.array(), config);
  std::vector<std::vector<wifi::CsiPacket>> empty_windows;
  for (std::size_t start = 0; start + window_packets <= calibration.size();
       start += window_packets) {
    empty_windows.emplace_back(
        calibration.begin() + static_cast<std::ptrdiff_t>(start),
        calibration.begin() +
            static_cast<std::ptrdiff_t>(start + window_packets));
  }
  detector.CalibrateThreshold(empty_windows);

  ProfileKit kit;
  kit.empty_scores.reserve(empty_windows.size());
  {
    core::DetectorScratch scratch;
    for (const auto& window : empty_windows) {
      kit.empty_scores.push_back(
          detector.Score(std::span<const wifi::CsiPacket>(window), scratch));
    }
  }
  kit.detector = std::make_shared<const core::Detector>(std::move(detector));
  kit.packet_pool = sim.CaptureSession(pool_size, std::nullopt, rng);
  return kit;
}

core::StreamingConfig FleetStream(std::size_t window_packets) {
  core::StreamingConfig stream;
  stream.window_packets = window_packets;
  // Hop 1: one decision per frame once the window is full — the serving
  // cadence the throughput target is defined against.
  stream.hop_packets = 1;
  stream.use_hmm = false;
  // The pooled frames carry arbitrary sequence numbers, so the guard (off
  // by default) must stay off for the throughput rows; the serve unit tests
  // cover guard-driven health eviction on realistic per-link streams.
  return stream;
}

// Percentile of the log2-bucketed depth distribution: upper bound of the
// bucket where the CDF crosses q.
std::size_t DepthPercentile(const serve::ShardStats& stats, double q) {
  if (stats.depth_samples == 0) return 0;
  const auto target = static_cast<std::uint64_t>(
      q * static_cast<double>(stats.depth_samples));
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < serve::ShardStats::kDepthBuckets; ++b) {
    seen += stats.depth_buckets[b];
    if (seen > target) {
      return b == 0 ? 1 : (std::size_t{1} << (b + 1)) - 1;
    }
  }
  return stats.max_depth;
}

struct FleetRowResult {
  std::size_t links = 0;
  std::size_t shards = 0;
  std::size_t window_packets = 0;
  std::size_t resident_cap = 0;
  bool churn = false;
  std::uint64_t frames_routed = 0;
  std::uint64_t frames_dropped = 0;
  std::uint64_t decisions = 0;
  double elapsed_s = 0.0;
  double decisions_per_s = 0.0;
  double allocs_per_decision = 0.0;
  std::uint64_t links_admitted = 0;
  std::uint64_t links_evicted = 0;
  std::vector<serve::ShardStats> shard_stats;
};

// Warm resident fleet: every link keeps its window full; the measured phase
// submits `measure_passes` more frames per link (1 decision each at hop 1)
// and must not allocate.
FleetRowResult RunResidentFleet(const ProfileKit& kit, std::size_t links,
                                std::size_t shards,
                                std::size_t window_packets,
                                std::size_t measure_passes) {
  serve::ServeConfig config;
  config.num_shards = shards;
  // 256 cells (~380 KB of CSI) keep the ring L2-resident: with a multi-MB
  // ring every cell copy is a cold write-allocate, which taxes the demux
  // thread without buying any steady-state buffering beyond what the
  // batched kBlock hand-off already provides.
  config.queue_capacity = 256;
  // Block: the demux waits for the workers instead of shedding, so the row
  // measures scoring throughput, not drop throughput.
  config.policy = serve::BackPressure::kBlock;
  config.stream = FleetStream(window_packets);

  serve::ServeCore core(config);
  const auto profile = core.RegisterProfile(kit.detector, kit.empty_scores);
  core.Start();

  const auto& pool = kit.packet_pool;
  // Warmup: fill every window and run a few decisions so every buffer in
  // every LinkState (and the queues' cells) reaches steady-state capacity.
  // Each queue cell allocates its CSI buffer on first use, so the warmup
  // must cycle every ring at least once: submit enough passes that each
  // shard sees more frames than its queue has cells.
  const std::size_t ring_passes =  // 2x: hashing splits links unevenly
      (2 * config.queue_capacity * shards + links - 1) / links + 1;
  const std::size_t warm_passes = std::max(window_packets + 2, ring_passes);
  for (std::size_t p = 0; p < warm_passes; ++p) {
    for (std::size_t l = 0; l < links; ++l) {
      core.Submit(l, profile, pool[(p + l) % pool.size()]);
    }
  }
  core.Drain();

  const auto stats_before = core.Stats();
  std::uint64_t decisions_before = 0;
  for (const auto& s : stats_before) decisions_before += s.decisions;

  const std::uint64_t allocs_before =
      g_alloc_count.load(std::memory_order_relaxed);
  const auto begin = Clock::now();
  for (std::size_t p = 0; p < measure_passes; ++p) {
    for (std::size_t l = 0; l < links; ++l) {
      core.Submit(l, profile, pool[(p + l) % pool.size()]);
    }
  }
  core.Drain();
  const auto end = Clock::now();
  const std::uint64_t allocs_after =
      g_alloc_count.load(std::memory_order_relaxed);
  core.Stop();

  FleetRowResult row;
  row.links = links;
  row.shards = shards;
  row.window_packets = window_packets;
  row.shard_stats = core.Stats();
  for (const auto& s : row.shard_stats) {
    row.frames_routed += s.frames_routed;
    row.frames_dropped += s.frames_dropped;
    row.decisions += s.decisions;
    row.links_admitted += s.links_admitted;
    row.links_evicted += s.links_evicted;
  }
  row.decisions -= decisions_before;
  row.elapsed_s = Seconds(begin, end);
  row.decisions_per_s =
      row.elapsed_s > 0.0
          ? static_cast<double>(row.decisions) / row.elapsed_s
          : 0.0;
  row.allocs_per_decision =
      row.decisions == 0
          ? 0.0
          : static_cast<double>(allocs_after - allocs_before) /
                static_cast<double>(row.decisions);
  return row;
}

// Residency-capped churn: many more links than the roster holds, routed in
// per-link bursts (admit, fill the window, decide, then lose the LRU race).
// Measures the admission/eviction control plane at fleet scale, so the
// allocator is legitimately busy here — the row reports admissions and
// evictions instead of an alloc gate.
FleetRowResult RunChurnFleet(const ProfileKit& kit, std::size_t links,
                             std::size_t shards, std::size_t window_packets,
                             std::size_t resident_cap) {
  serve::ServeConfig config;
  config.num_shards = shards;
  config.queue_capacity = 256;
  config.policy = serve::BackPressure::kBlock;
  config.max_resident_per_shard = resident_cap;
  config.stream = FleetStream(window_packets);

  serve::ServeCore core(config);
  const auto profile = core.RegisterProfile(kit.detector, kit.empty_scores);
  core.Start();

  const auto& pool = kit.packet_pool;
  const auto begin = Clock::now();
  for (std::size_t l = 0; l < links; ++l) {
    // One burst per link: window fill plus one hop-1 decision.
    for (std::size_t p = 0; p < window_packets; ++p) {
      core.Submit(l, profile, pool[(p + l) % pool.size()]);
    }
  }
  core.Drain();
  const auto end = Clock::now();
  core.Stop();

  FleetRowResult row;
  row.links = links;
  row.shards = shards;
  row.window_packets = window_packets;
  row.resident_cap = resident_cap;
  row.churn = true;
  row.shard_stats = core.Stats();
  for (const auto& s : row.shard_stats) {
    row.frames_routed += s.frames_routed;
    row.frames_dropped += s.frames_dropped;
    row.decisions += s.decisions;
    row.links_admitted += s.links_admitted;
    row.links_evicted += s.links_evicted;
  }
  row.elapsed_s = Seconds(begin, end);
  row.decisions_per_s =
      row.elapsed_s > 0.0
          ? static_cast<double>(row.decisions) / row.elapsed_s
          : 0.0;
  return row;
}

// Deterministic replay: per-link frame streams (forked RNG in link order)
// through `shards` shards; returns the merged log's raw bytes for an exact
// cross-shard-count comparison.
std::vector<std::uint8_t> DeterministicLogBytes(
    const ProfileKit& kit, std::size_t links, std::size_t frames_per_link,
    std::size_t shards, std::size_t window_packets) {
  serve::ServeConfig config;
  config.num_shards = shards;
  config.queue_capacity = 256;
  config.deterministic = true;
  config.collect_decision_log = true;
  config.stream = FleetStream(window_packets);

  serve::ServeCore core(config);
  const auto profile = core.RegisterProfile(kit.detector, kit.empty_scores);

  // Per-link packet streams, pre-generated so every shard count replays the
  // exact same frames in the exact same demux order.
  Rng rng(101);
  const auto lc = ex::MakeClassroomLink();
  auto sim = ex::MakeSimulator(lc);
  std::vector<std::vector<wifi::CsiPacket>> streams;
  streams.reserve(links);
  for (std::size_t l = 0; l < links; ++l) {
    auto fork = rng.Fork();
    streams.push_back(sim.CaptureSession(frames_per_link, std::nullopt, fork));
  }

  core.Start();
  for (std::size_t p = 0; p < frames_per_link; ++p) {
    for (std::size_t l = 0; l < links; ++l) {
      core.Submit(l, profile, streams[l][p]);
    }
  }
  core.Drain();
  core.Stop();

  const auto log = core.MergedDecisionLog();
  std::vector<std::uint8_t> bytes;
  bytes.reserve(log.size() * (sizeof(std::uint64_t) + 2 * sizeof(double) + 2));
  for (const auto& record : log) {
    const auto append = [&bytes](const void* p, std::size_t n) {
      const auto* b = static_cast<const std::uint8_t*>(p);
      bytes.insert(bytes.end(), b, b + n);
    };
    append(&record.link_id, sizeof(record.link_id));
    append(&record.decision.score, sizeof(double));
    append(&record.decision.posterior, sizeof(double));
    bytes.push_back(record.decision.occupied ? 1 : 0);
    bytes.push_back(record.decision.degraded ? 1 : 0);
  }
  return bytes;
}

void WriteShardDepthJson(std::ostream& out, const serve::ShardStats& stats) {
  out << "{\"p50\": " << DepthPercentile(stats, 0.50)
      << ", \"p90\": " << DepthPercentile(stats, 0.90)
      << ", \"p99\": " << DepthPercentile(stats, 0.99)
      << ", \"max\": " << stats.max_depth
      << ", \"samples\": " << stats.depth_samples << "}";
}

void WriteRowJson(std::ostream& out, const FleetRowResult& row) {
  out << "    {\"links\": " << row.links << ", \"shards\": " << row.shards
      << ", \"window_packets\": " << row.window_packets
      << ", \"churn\": " << (row.churn ? "true" : "false")
      << ", \"resident_cap\": " << row.resident_cap
      << ",\n     \"frames_routed\": " << row.frames_routed
      << ", \"frames_dropped\": " << row.frames_dropped
      << ", \"decisions\": " << row.decisions
      << ",\n     \"elapsed_s\": " << ex::Fmt(row.elapsed_s, 3)
      << ", \"decisions_per_s\": " << ex::Fmt(row.decisions_per_s, 0)
      << ", \"allocs_per_decision\": "
      << ex::Fmt(row.allocs_per_decision, 4)
      << ",\n     \"links_admitted\": " << row.links_admitted
      << ", \"links_evicted\": " << row.links_evicted
      << ",\n     \"queue_depth\": [";
  for (std::size_t i = 0; i < row.shard_stats.size(); ++i) {
    if (i > 0) out << ", ";
    WriteShardDepthJson(out, row.shard_stats[i]);
  }
  out << "]}";
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--smoke") smoke = true;
  }

  const std::size_t window_packets = 25;
  const std::size_t hw = std::max<unsigned>(
      1u, std::thread::hardware_concurrency());

  std::cout << "serve_throughput: combined scheme, window " << window_packets
            << ", hop 1, hardware_concurrency " << hw
            << (smoke ? " [smoke]" : "") << "\n";

  const ProfileKit kit = MakeProfile(window_packets, 64);

  // Fleet rows: warm resident fleets, then the LRU churn row.
  const std::size_t small_fleet = smoke ? 64 : 10000;
  const std::size_t large_fleet = smoke ? 128 : 100000;
  const std::size_t churn_fleet = smoke ? 256 : 1000000;
  const std::size_t churn_cap = smoke ? 64 : 50000;
  const std::size_t passes = smoke ? 2 : 5;

  // Hot-set serving rows: the low-latency window-10 configuration on a
  // cache-resident fleet. The big fleets above are DRAM-bound by design
  // (every decision re-reads a window that went cold since the link's last
  // frame); these rows report what a shard sustains when the per-link state
  // still fits in cache — the per-core budget a deployment provisions
  // against when it sizes links-per-shard.
  const std::size_t hot_window = 10;
  const ProfileKit hot_kit = MakeProfile(hot_window, 64);
  const std::size_t hot_passes = smoke ? 2 : 20;

  std::vector<FleetRowResult> rows;
  std::vector<FleetRowResult> scaling;
  for (const std::size_t shards : {std::size_t{1}, std::size_t{2},
                                   std::size_t{4}}) {
    auto row = RunResidentFleet(kit, small_fleet, shards, window_packets,
                                passes);
    std::cout << "  fleet " << row.links << " x" << row.shards
              << " shard(s): "
              << ex::Fmt(row.decisions_per_s, 0) << " decisions/s, "
              << ex::Fmt(row.allocs_per_decision, 4)
              << " allocs/decision\n";
    if (shards == 1) rows.push_back(row);
    scaling.push_back(std::move(row));
  }
  rows.push_back(
      RunResidentFleet(kit, large_fleet, 1, window_packets,
                       smoke ? passes : 2));
  std::cout << "  fleet " << rows.back().links << " x1 shard: "
            << ex::Fmt(rows.back().decisions_per_s, 0) << " decisions/s, "
            << ex::Fmt(rows.back().allocs_per_decision, 4)
            << " allocs/decision\n";
  for (const std::size_t hot_links :
       {smoke ? std::size_t{32} : std::size_t{256},
        smoke ? std::size_t{64} : std::size_t{1024}}) {
    auto row =
        RunResidentFleet(hot_kit, hot_links, 1, hot_window, hot_passes);
    std::cout << "  hot fleet " << row.links << " x1 shard (window "
              << hot_window << "): " << ex::Fmt(row.decisions_per_s, 0)
              << " decisions/s, " << ex::Fmt(row.allocs_per_decision, 4)
              << " allocs/decision\n";
    rows.push_back(std::move(row));
  }
  rows.push_back(
      RunChurnFleet(kit, churn_fleet, 1, window_packets, churn_cap));
  std::cout << "  churn " << rows.back().links << " links (cap "
            << churn_cap << "): "
            << ex::Fmt(rows.back().decisions_per_s, 0) << " decisions/s, "
            << rows.back().links_evicted << " evictions\n";

  // Headline: the largest warm resident fleet at full hardware concurrency
  // (sharded at min(hw, 4); on a single-core host that is 1 shard).
  const FleetRowResult* headline = &rows[0];
  for (const auto& row : rows) {
    if (!row.churn && row.decisions_per_s > headline->decisions_per_s) {
      headline = &row;
    }
  }

  // Determinism: merged decision logs must be byte-identical for 1/2/4
  // shards.
  const std::size_t det_links = smoke ? 16 : 64;
  const std::size_t det_frames = smoke ? 40 : 80;
  const auto log1 =
      DeterministicLogBytes(kit, det_links, det_frames, 1, window_packets);
  const auto log2 =
      DeterministicLogBytes(kit, det_links, det_frames, 2, window_packets);
  const auto log4 =
      DeterministicLogBytes(kit, det_links, det_frames, 4, window_packets);
  const bool bit_identical = !log1.empty() && log1 == log2 && log1 == log4;
  std::cout << "  determinism: " << det_links << " links via 1/2/4 shards: "
            << (bit_identical ? "bit-identical" : "MISMATCH") << "\n";

  std::ofstream json("BENCH_serve.json");
  json << "{\n"
       << "  \"benchmark\": \"mulink_serve\",\n"
       << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n"
       << "  \"scheme\": \"subcarrier+path-weighting\",\n"
       << "  \"window_packets\": " << window_packets << ",\n"
       << "  \"hop_packets\": 1,\n"
       << "  \"queue_capacity\": 256,\n"
       << "  \"policy\": \"block\",\n"
       << "  \"hardware_concurrency\": " << hw << ",\n"
       << "  \"rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    WriteRowJson(json, rows[i]);
    json << (i + 1 < rows.size() ? ",\n" : "\n");
  }
  json << "  ],\n"
       << "  \"scaling\": [\n";
  for (std::size_t i = 0; i < scaling.size(); ++i) {
    const auto& row = scaling[i];
    json << "    {\"shards\": " << row.shards << ", \"links\": " << row.links
         << ", \"decisions_per_s\": " << ex::Fmt(row.decisions_per_s, 0)
         << ", \"oversubscribed\": "
         << (row.shards > hw ? "true" : "false") << "}"
         << (i + 1 < scaling.size() ? ",\n" : "\n");
  }
  json << "  ],\n"
       << "  \"headline\": {\"links\": " << headline->links
       << ", \"shards\": " << headline->shards
       << ", \"window_packets\": " << headline->window_packets
       << ", \"decisions_per_s\": "
       << ex::Fmt(headline->decisions_per_s, 0)
       << ", \"allocs_per_decision\": "
       << ex::Fmt(headline->allocs_per_decision, 4) << "},\n"
       << "  \"determinism\": {\"shard_counts\": [1, 2, 4], \"links\": "
       << det_links << ", \"frames_per_link\": " << det_frames
       << ", \"decisions\": " << (log1.size() / 26)
       << ", \"bit_identical\": " << (bit_identical ? "true" : "false")
       << "}\n"
       << "}\n";
  std::cout << "wrote BENCH_serve.json\n";
  return bit_identical ? 0 : 1;
}
