// Fig. 11 — Detection performance of human locations at different angles
// (same radius from the receiver).
//
// Paper shape: path weighting gives a notable improvement at relatively
// large angles (off the LOS direction) and only marginal gain near 0 deg,
// where the LOS already dominates detection.
#include <iostream>

#include "experiments/campaign.h"
#include "experiments/format.h"

using namespace mulink;
namespace ex = mulink::experiments;

int main(int argc, char** argv) {
  const bool smoke = ex::SmokeMode(argc, argv);
  (void)smoke;
  ex::PrintBanner(std::cout, "Fig. 11 — Detection rate vs human angle");

  const auto all_cases = ex::MakePaperCases();
  std::vector<ex::LinkCase> cases = {all_cases[0], all_cases[1], all_cases[3]};

  const std::vector<double> angles = {-60, -45, -30, -15, 0, 15, 30, 45, 60};
  std::vector<std::vector<ex::HumanSpot>> spots;
  for (const auto& lc : cases) {
    spots.push_back(ex::AngularArc(lc, 2.0, angles));
  }

  ex::CampaignConfig config;
  config.packets_per_location = smoke ? 75 : 600;
  config.calibration_packets = smoke ? 100 : 400;
  config.empty_packets = smoke ? 150 : 1000;
  config.seed = 11;

  const auto result = ex::RunCampaign(
      cases, spots,
      {core::DetectionScheme::kSubcarrierWeighting,
       core::DetectionScheme::kSubcarrierAndPathWeighting},
      config);

  std::vector<std::vector<std::string>> rows;
  double gain_small_angle = 0.0, gain_large_angle = 0.0;
  int small_count = 0, large_count = 0;
  for (double angle : angles) {
    std::vector<std::string> row = {ex::Fmt(angle, 0)};
    std::vector<double> rates;
    for (const auto& scheme : result.schemes) {
      const auto best = scheme.Roc().BestBalancedAccuracy();
      const double rate = scheme.DetectionRate(
          best.threshold, [&](const ex::ScoredWindow& w) {
            return std::abs(w.angle_deg - angle) < 7.0;
          });
      rates.push_back(rate);
      row.push_back(ex::Fmt(rate * 100.0, 1));
    }
    const double gain = rates[1] - rates[0];
    row.push_back(ex::Fmt(gain * 100.0, 1));
    if (std::abs(angle) < 5.0) {
      gain_small_angle += gain;
      ++small_count;
    } else if (std::abs(angle) >= 30.0) {
      gain_large_angle += gain;
      ++large_count;
    }
    rows.push_back(std::move(row));
  }
  ex::PrintTable(std::cout, "detection rate % by angle (radius 2 m)",
                 {"angle_deg", "subcarrier", "subcarrier+path", "path gain"},
                 rows);

  std::cout << "path-weighting gain on the LOS direction (0 deg):  "
            << ex::Fmt(gain_small_angle / small_count * 100.0, 1) << " pts\n"
            << "mean gain away from the LOS (|angle| >= 30 deg):   "
            << ex::Fmt(gain_large_angle / large_count * 100.0, 1) << " pts\n"
            << "Paper shape: notable improvement at large angles, marginal "
               "near zero degrees.\n";
  return 0;
}
