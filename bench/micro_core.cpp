// Microbenchmarks backing Sec. V-B4's claim that "the weighting schemes are
// low in computation complexity": per-packet and per-window costs of every
// pipeline stage, so the packet budget (not compute) dominates latency.
//
// The ScoreWindow benchmarks come in before/after pairs — the legacy
// allocating Score against the workspace Score on persistent scratch — each
// reporting allocations per window via a counting global allocator. A
// machine-readable summary of that comparison is written to
// BENCH_engine.json before the Google-benchmark run starts.
#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <new>
#include <optional>
#include <span>
#include <string>

#include "common/rng.h"
#include "core/detector.h"
#include "core/engine.h"
#include "core/multipath_factor.h"
#include "core/music.h"
#include "core/sanitize.h"
#include "core/subcarrier_weighting.h"
#include "experiments/scenario.h"
#include "obs/metrics.h"

// ---- Counting global allocator -------------------------------------------
// Every heap allocation in the process bumps this counter; benchmarks diff
// it around their hot loop to report allocations per window.

namespace {
std::atomic<std::uint64_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

// The replacement operator new above is malloc-backed, so releasing with
// std::free is correct; GCC's heuristic cannot see the pairing.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

using namespace mulink;
namespace ex = mulink::experiments;

namespace {

std::uint64_t AllocCount() {
  return g_alloc_count.load(std::memory_order_relaxed);
}

struct Fixture {
  ex::LinkCase link = ex::MakeClassroomLink();
  nic::ChannelSimulator sim = ex::MakeSimulator(link);
  Rng rng{77};
  std::vector<wifi::CsiPacket> calibration =
      sim.CaptureSession(400, std::nullopt, rng);
  std::vector<wifi::CsiPacket> window =
      sim.CaptureSession(25, std::nullopt, rng);
  std::vector<wifi::CsiPacket> batch =
      sim.CaptureSession(200, std::nullopt, rng);
  std::vector<wifi::CsiPacket> sanitized =
      core::SanitizePhase(window, sim.band());
};

Fixture& Shared() {
  static Fixture fixture;
  return fixture;
}

void BM_CapturePacket(benchmark::State& state) {
  auto& f = Shared();
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.sim.CapturePacket(std::nullopt, f.rng));
  }
}
BENCHMARK(BM_CapturePacket);

void BM_SanitizePhase(benchmark::State& state) {
  auto& f = Shared();
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::SanitizePhase(f.window[0], f.sim.band()));
  }
}
BENCHMARK(BM_SanitizePhase);

void BM_MultipathFactors(benchmark::State& state) {
  auto& f = Shared();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::MeasureMultipathFactors(f.sanitized[0], f.sim.band()));
  }
}
BENCHMARK(BM_MultipathFactors);

void BM_SubcarrierWeights(benchmark::State& state) {
  auto& f = Shared();
  const auto mu = core::MeasureMultipathFactors(f.sanitized, f.sim.band());
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::ComputeSubcarrierWeights(mu));
  }
}
BENCHMARK(BM_SubcarrierWeights);

void BM_SampleCovariance(benchmark::State& state) {
  auto& f = Shared();
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::SampleCovariance(f.sanitized));
  }
}
BENCHMARK(BM_SampleCovariance);

void BM_MusicSpectrum(benchmark::State& state) {
  auto& f = Shared();
  const auto cov = core::SampleCovariance(f.sanitized);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::ComputeMusicSpectrum(cov, f.sim.array(), f.sim.band()));
  }
}
BENCHMARK(BM_MusicSpectrum);

void BM_BartlettSpectrum(benchmark::State& state) {
  auto& f = Shared();
  const auto cov = core::SampleCovariance(f.sanitized);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::ComputeBartlettSpectrum(cov, f.sim.array(), f.sim.band()));
  }
}
BENCHMARK(BM_BartlettSpectrum);

// Before: the legacy allocating per-call API.
void BM_ScoreWindow(benchmark::State& state) {
  auto& f = Shared();
  core::DetectorConfig config;
  config.scheme = static_cast<core::DetectionScheme>(state.range(0));
  const auto detector = core::Detector::Calibrate(f.calibration, f.sim.band(),
                                                  f.sim.array(), config);
  const std::uint64_t allocs_before = AllocCount();
  std::uint64_t windows = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(detector.Score(f.window));
    ++windows;
  }
  state.counters["allocs_per_window"] = windows > 0
      ? static_cast<double>(AllocCount() - allocs_before) /
            static_cast<double>(windows)
      : 0.0;
}
BENCHMARK(BM_ScoreWindow)
    ->Arg(static_cast<int>(core::DetectionScheme::kBaseline))
    ->Arg(static_cast<int>(core::DetectionScheme::kSubcarrierWeighting))
    ->Arg(static_cast<int>(core::DetectionScheme::kSubcarrierAndPathWeighting))
    ->Arg(static_cast<int>(core::DetectionScheme::kVarianceMobile));

// After: the workspace API on persistent scratch (zero allocations once
// warm — the counter asserts it).
void BM_ScoreWindowScratch(benchmark::State& state) {
  auto& f = Shared();
  core::DetectorConfig config;
  config.scheme = static_cast<core::DetectionScheme>(state.range(0));
  const auto detector = core::Detector::Calibrate(f.calibration, f.sim.band(),
                                                  f.sim.array(), config);
  core::DetectorScratch scratch;
  const std::span<const wifi::CsiPacket> window(f.window);
  benchmark::DoNotOptimize(detector.Score(window, scratch));  // warm-up
  const std::uint64_t allocs_before = AllocCount();
  std::uint64_t windows = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(detector.Score(window, scratch));
    ++windows;
  }
  state.counters["allocs_per_window"] = windows > 0
      ? static_cast<double>(AllocCount() - allocs_before) /
            static_cast<double>(windows)
      : 0.0;
}
BENCHMARK(BM_ScoreWindowScratch)
    ->Arg(static_cast<int>(core::DetectionScheme::kBaseline))
    ->Arg(static_cast<int>(core::DetectionScheme::kSubcarrierWeighting))
    ->Arg(static_cast<int>(core::DetectionScheme::kSubcarrierAndPathWeighting))
    ->Arg(static_cast<int>(core::DetectionScheme::kVarianceMobile));

// Whole-engine batch ingest of a 200-packet span with sliding windows
// (window 25, hop 10 — the low-latency monitoring cadence), ring + scratch
// fully warm. Counters report allocations per batch and decisions emitted
// per batch, so ns-per-decision = time / decisions_per_batch.
void BM_ProcessBatch(benchmark::State& state) {
  auto& f = Shared();
  core::DetectorConfig config;
  config.scheme = core::DetectionScheme::kSubcarrierAndPathWeighting;
  auto detector = core::Detector::Calibrate(f.calibration, f.sim.band(),
                                            f.sim.array(), config);
  detector.SetThreshold(1.0);
  core::StreamingConfig stream;
  stream.hop_packets = 10;
  stream.use_hmm = false;
  core::SensingEngine engine;
  engine.AddLink(std::move(detector), {}, stream);
  const std::span<const wifi::CsiPacket> batch(f.batch);
  engine.ProcessBatch(batch);  // warm-up
  const std::uint64_t allocs_before = AllocCount();
  std::uint64_t batches = 0, decisions = 0;
  for (auto _ : state) {
    const auto& result = engine.ProcessBatch(batch);
    benchmark::DoNotOptimize(result.decisions.size());
    decisions += result.decisions.size();
    ++batches;
  }
  state.counters["allocs_per_batch"] = batches > 0
      ? static_cast<double>(AllocCount() - allocs_before) /
            static_cast<double>(batches)
      : 0.0;
  state.counters["decisions_per_batch"] =
      batches > 0 ? static_cast<double>(decisions) / static_cast<double>(batches)
                  : 0.0;
}
BENCHMARK(BM_ProcessBatch);

void BM_Calibrate(benchmark::State& state) {
  auto& f = Shared();
  core::DetectorConfig config;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::Detector::Calibrate(
        f.calibration, f.sim.band(), f.sim.array(), config));
  }
}
BENCHMARK(BM_Calibrate);

// ---- BENCH_engine.json ---------------------------------------------------
// Standalone legacy-vs-engine comparison for every scheme, emitted before
// the benchmark run so CI and the docs have a machine-readable artifact.
//
// All three columns process the SAME 200-packet stream at the same cadence
// (window 25, hop 10) and report cost per emitted decision, so they differ
// only in how the work is organized:
//  * legacy   — per decision, assemble the window and call the allocating
//               per-call Score API (fresh buffers + full window
//               re-sanitization every call),
//  * scratch  — same walk on a persistent workspace (zero steady-state
//               allocations, but still re-sanitizes the 25-packet window
//               every hop),
//  * engine   — SensingEngine::ProcessBatch (workspace + each packet
//               sanitized once on ingest + profile covariance stack cached
//               across windows).
// Scoring a varying stream is deliberate: re-scoring one fixed window keeps
// every buffer and branch predictor hot and flatters whichever API runs
// last. `speedup` compares the deployable engine path against the legacy
// per-call API.

struct EngineRow {
  const char* scheme;
  double legacy_ns = 0.0;
  double legacy_allocs = 0.0;
  double scratch_ns = 0.0;
  double scratch_allocs = 0.0;
  double engine_ns = 0.0;
  double engine_allocs = 0.0;
  // Same engine path with the observability registry attached — the cost of
  // metrics is (engine_metrics_ns - engine_ns) / engine_ns, and the
  // allocation column proves recording stays heap-free.
  double engine_metrics_ns = 0.0;
  double engine_metrics_allocs = 0.0;
};

// Replays StreamingDetector's ring discipline over a batch so the legacy and
// scratch columns pay the same window-assembly cost the engine pays
// internally. Fill state persists across passes: after the first pass every
// pass emits batch.size() / hop decisions.
struct StreamEmulator {
  std::size_t window_packets;
  std::size_t hop;
  std::vector<wifi::CsiPacket> ring;
  std::vector<wifi::CsiPacket> window;
  std::size_t write_pos = 0;
  std::size_t count = 0;
  std::size_t since = 0;

  StreamEmulator(std::size_t window_size, std::size_t hop_size)
      : window_packets(window_size), hop(hop_size) {
    ring.resize(window_packets);
    window.reserve(window_packets);
  }

  template <typename Fn>
  void Pass(std::span<const wifi::CsiPacket> batch, Fn&& score_window) {
    for (const auto& packet : batch) {
      ring[write_pos] = packet;
      write_pos = (write_pos + 1) % window_packets;
      if (count < window_packets) ++count;
      ++since;
      if (count < window_packets || since < hop) continue;
      since = 0;
      window.resize(window_packets);
      for (std::size_t i = 0; i < window_packets; ++i) {
        window[i] = ring[(write_pos + i) % window_packets];
      }
      score_window(window);
    }
  }
};

// Smoke mode (--smoke): one calibration round instead of ~50 ms per column
// and no Google-benchmark run — CI executes the binary as a crash canary.
bool g_smoke = false;

template <typename Fn>
void MeasureLoop(Fn&& score_once, double& ns_per_window,
                 double& allocs_per_window) {
  using clock = std::chrono::steady_clock;
  score_once();  // warm-up
  // Calibrate iteration count to ~50 ms of work (~0.5 ms in smoke mode).
  const double target_ns = g_smoke ? 5e5 : 5e7;
  std::size_t iters = 8;
  for (;;) {
    const auto t0 = clock::now();
    for (std::size_t i = 0; i < iters; ++i) score_once();
    const double elapsed_ns =
        static_cast<double>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                clock::now() - t0)
                                .count());
    if (elapsed_ns > target_ns || iters >= (1u << 20)) {
      // Min of three timed passes: the box runs other tenants, and a single
      // pass can absorb a scheduling gap several times the cost of the work
      // being measured. The minimum is the standard noise-robust estimator
      // for a deterministic loop. Allocations are counted across all
      // passes — any pass allocating would make the quotient non-zero.
      const std::uint64_t allocs_before = AllocCount();
      double best_ns = 0.0;
      const int passes = g_smoke ? 1 : 3;
      for (int pass = 0; pass < passes; ++pass) {
        const auto m0 = clock::now();
        for (std::size_t i = 0; i < iters; ++i) score_once();
        const double measured_ns = static_cast<double>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() -
                                                                 m0)
                .count());
        if (pass == 0 || measured_ns < best_ns) best_ns = measured_ns;
      }
      ns_per_window = best_ns / static_cast<double>(iters);
      allocs_per_window =
          static_cast<double>(AllocCount() - allocs_before) /
          static_cast<double>(iters * static_cast<std::size_t>(passes));
      return;
    }
    iters *= 2;
  }
}

void WriteEngineJson(const char* path) {
  auto& f = Shared();
  const core::DetectionScheme schemes[] = {
      core::DetectionScheme::kBaseline,
      core::DetectionScheme::kSubcarrierWeighting,
      core::DetectionScheme::kSubcarrierAndPathWeighting,
      core::DetectionScheme::kVarianceMobile,
  };
  constexpr std::size_t kHop = 10;
  const std::span<const wifi::CsiPacket> batch(f.batch);
  const std::size_t window_packets = f.window.size();
  // Fill state persists across MeasureLoop iterations, so every timed pass
  // emits exactly batch / hop decisions.
  const double decisions_per_pass =
      static_cast<double>(f.batch.size()) / static_cast<double>(kHop);

  std::vector<EngineRow> rows;
  // Merged per-stage histograms from every metrics-on engine run; the
  // "stages" object divides each stage's total by the decisions it served.
  obs::Registry stage_totals;
  // The combined scheme's histograms alone, for the per-stage roofline
  // block (merging schemes would blend unrelated score loops).
  obs::Registry combined_metrics;
  for (auto scheme : schemes) {
    core::DetectorConfig config;
    config.scheme = scheme;
    const auto detector = core::Detector::Calibrate(
        f.calibration, f.sim.band(), f.sim.array(), config);
    EngineRow row;
    row.scheme = core::ToString(scheme);

    StreamEmulator legacy_stream(window_packets, kHop);
    MeasureLoop(
        [&] {
          legacy_stream.Pass(batch, [&](const auto& window) {
            benchmark::DoNotOptimize(detector.Score(window));
          });
        },
        row.legacy_ns, row.legacy_allocs);
    row.legacy_ns /= decisions_per_pass;
    row.legacy_allocs /= decisions_per_pass;

    StreamEmulator scratch_stream(window_packets, kHop);
    core::DetectorScratch scratch;
    MeasureLoop(
        [&] {
          scratch_stream.Pass(batch, [&](const auto& window) {
            benchmark::DoNotOptimize(detector.Score(
                std::span<const wifi::CsiPacket>(window), scratch));
          });
        },
        row.scratch_ns, row.scratch_allocs);
    row.scratch_ns /= decisions_per_pass;
    row.scratch_allocs /= decisions_per_pass;

    auto engine_detector = core::Detector::Calibrate(
        f.calibration, f.sim.band(), f.sim.array(), config);
    engine_detector.SetThreshold(1.0);
    core::StreamingConfig stream;
    stream.hop_packets = kHop;
    stream.use_hmm = false;
    core::SensingEngine engine;
    engine.AddLink(std::move(engine_detector), {}, stream);
    engine.SetMetricsEnabled(false);  // runtime no-op sink
    double batch_ns = 0.0, batch_allocs = 0.0;
    MeasureLoop(
        [&] { benchmark::DoNotOptimize(&engine.ProcessBatch(batch)); },
        batch_ns, batch_allocs);
    row.engine_ns = batch_ns / decisions_per_pass;
    row.engine_allocs = batch_allocs / decisions_per_pass;

    // Metrics-on twin: identical engine, registry attached. Its per-stage
    // histograms also feed the top-level "stages" breakdown below.
    auto metrics_detector = core::Detector::Calibrate(
        f.calibration, f.sim.band(), f.sim.array(), config);
    metrics_detector.SetThreshold(1.0);
    core::SensingEngine metrics_engine;
    metrics_engine.AddLink(std::move(metrics_detector), {}, stream);
    metrics_engine.SetMetricsEnabled(true);
    double mbatch_ns = 0.0, mbatch_allocs = 0.0;
    MeasureLoop(
        [&] {
          benchmark::DoNotOptimize(&metrics_engine.ProcessBatch(batch));
        },
        mbatch_ns, mbatch_allocs);
    row.engine_metrics_ns = mbatch_ns / decisions_per_pass;
    row.engine_metrics_allocs = mbatch_allocs / decisions_per_pass;
    stage_totals.MergeFrom(metrics_engine.Metrics(0));
    if (scheme == core::DetectionScheme::kSubcarrierAndPathWeighting) {
      combined_metrics.MergeFrom(metrics_engine.Metrics(0));
    }
    rows.push_back(row);
  }

  std::ofstream out(path);
  out << "{\n  \"benchmark\": \"detector_score_legacy_vs_engine\",\n"
      << "  \"window_packets\": " << f.window.size() << ",\n"
      << "  \"hop_packets\": " << kHop << ",\n"
      << "  \"stream_packets\": " << f.batch.size() << ",\n"
      << "  \"schemes\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& r = rows[i];
    out << "    {\"scheme\": \"" << r.scheme << "\", "
        << "\"legacy_ns_per_decision\": " << r.legacy_ns << ", "
        << "\"legacy_allocs_per_decision\": " << r.legacy_allocs << ", "
        << "\"scratch_ns_per_decision\": " << r.scratch_ns << ", "
        << "\"scratch_allocs_per_decision\": " << r.scratch_allocs << ", "
        << "\"engine_ns_per_decision\": " << r.engine_ns << ", "
        << "\"engine_allocs_per_decision\": " << r.engine_allocs << ", "
        << "\"engine_metrics_ns_per_decision\": " << r.engine_metrics_ns
        << ", "
        << "\"engine_metrics_allocs_per_decision\": "
        << r.engine_metrics_allocs << ", "
        << "\"metrics_overhead_pct\": "
        << (r.engine_ns > 0.0
                ? 100.0 * (r.engine_metrics_ns - r.engine_ns) / r.engine_ns
                : 0.0)
        << ", "
        << "\"speedup\": " << (r.engine_ns > 0.0 ? r.legacy_ns / r.engine_ns
                                                 : 0.0)
        << "}" << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  // Per-stage breakdown from the metrics-on runs. Every stage key is always
  // present (zeros when a stage did not run or obs is compiled out), so the
  // CI schema check can rely on the shape.
  const double total_decisions = static_cast<double>(
      stage_totals.Get(obs::Counter::kDecisions));
  out << "  ],\n  \"obs_enabled\": "
      << (obs::kEnabled ? "true" : "false") << ",\n  \"stages\": {\n";
  for (std::size_t s = 0; s < obs::kNumStages; ++s) {
    const auto stage = static_cast<obs::Stage>(s);
    const auto& h = stage_totals.StageLatency(stage);
    out << "    \"" << obs::ToString(stage) << "\": {\"count\": " << h.count
        << ", \"ns_per_decision\": "
        << (total_decisions > 0.0 ? h.total_ns / total_decisions : 0.0)
        << ", \"mean_ns\": " << h.MeanNs() << "}"
        << (s + 1 < obs::kNumStages ? "," : "") << "\n";
  }

  // Per-stage roofline for the combined scheme: analytic traffic and FLOP
  // counts per decision from the pipeline shape, next to the measured
  // latency. The analytic side counts the algorithmic work (reads/writes of
  // the buffers each kernel touches, mul/add/div/sqrt as one FLOP each,
  // libm-grade trig at its polynomial cost) — cache reuse is not modeled,
  // so bytes are an upper bound on DRAM traffic and a lower bound on
  // load/store traffic.
  {
    const double A = static_cast<double>(f.window[0].NumAntennas());
    const double K = static_cast<double>(f.window[0].NumSubcarriers());
    const double W = static_cast<double>(window_packets);
    const double H = static_cast<double>(kHop);
    const double G = static_cast<double>(core::MusicConfig{}.num_points);
    const double pairs = A * (A - 1.0) / 2.0;
    // Kernel-layer trig cost per element (polynomial + reduction, counted
    // from trig_core.h): ~30 flops a sincos pair, ~40 an atan2 (two
    // half-angle reductions burn div/sqrt).
    const double kSinCosFlops = 30.0, kAtan2Flops = 40.0;

    struct RooflineRow {
      const char* stage;
      obs::Stage id;
      double per_decision;  // timed invocations per decision
      double bytes;
      double flops;
    };
    const RooflineRow roofline[] = {
        // Sanitize + ingest-time mu/median per packet, x hop packets per
        // decision. Bytes: CSI in+out, split-complex lanes, mu row.
        {"ingest_sanitize", obs::Stage::kIngestSanitize, H,
         H * (2.0 * A * K * 16.0 + 8.0 * K * 8.0 + K * 8.0),
         H * (2.0 * A * K + (kAtan2Flops + kSinCosFlops) * K + 18.0 * K +
              6.0 * A * K + A * (2.0 * K + 3.0 * K) + 8.0 * K)},
        // Eq. 13-15 from the prepared rows: one fused mean/stability pass
        // over W rows plus the normalization tail.
        {"subcarrier_weighting", obs::Stage::kSubcarrierWeighting, 1.0,
         W * (K * 8.0 + 2.0 * K * 8.0) + 4.0 * K * 8.0,
         W * 3.0 * K + 8.0 * K},
        // Window covariance pack+reduce, profile stack combine, two
        // closed-form lambda_min, the batched two-spectrum Bartlett scan
        // and the Eq. 17 path-weight products.
        {"music_path_weighting", obs::Stage::kMusicPathWeighting, 1.0,
         W * A * K * 16.0 * 2.0 + K * A * A * 16.0 +
             2.0 * A * G * 8.0 + 2.0 * A * A * 16.0 + 4.0 * G * 8.0,
         (A + 4.0 * pairs) * W * K * 4.0 + K * A * A * 8.0 + 2.0 * 60.0 +
             2.0 * G * (2.0 * A + 8.0 * pairs) + 2.0 * G},
        // Normalized Euclidean distance of the two weighted spectra.
        {"score", obs::Stage::kScore, 1.0, 3.0 * G * 8.0, 6.0 * G},
    };
    const double combined_decisions = static_cast<double>(
        combined_metrics.Get(obs::Counter::kDecisions));
    out << "  },\n  \"roofline\": {\n";
    for (std::size_t r = 0; r < std::size(roofline); ++r) {
      const auto& row = roofline[r];
      const auto& h = combined_metrics.StageLatency(row.id);
      // ingest_sanitize is sampled 1-in-N, so scale its per-invocation mean
      // by invocations per decision instead of dividing a sampled total.
      const double ns = combined_decisions > 0.0 && h.count > 0
                            ? h.MeanNs() * row.per_decision
                            : 0.0;
      out << "    \"" << row.stage
          << "\": {\"bytes_per_decision\": " << row.bytes
          << ", \"flops_per_decision\": " << row.flops
          << ", \"ns_per_decision\": " << ns << "}"
          << (r + 1 < std::size(roofline) ? "," : "") << "\n";
    }
    out << "  }\n}\n";
    return;
  }
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--smoke") {
      g_smoke = true;
      // Hide the flag from benchmark::Initialize.
      for (int j = i; j + 1 < argc; ++j) argv[j] = argv[j + 1];
      --argc;
      break;
    }
  }
  WriteEngineJson("BENCH_engine.json");
  if (g_smoke) return 0;
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
