// Microbenchmarks backing Sec. V-B4's claim that "the weighting schemes are
// low in computation complexity": per-packet and per-window costs of every
// pipeline stage, so the packet budget (not compute) dominates latency.
#include <benchmark/benchmark.h>

#include <optional>

#include "common/rng.h"
#include "core/detector.h"
#include "core/multipath_factor.h"
#include "core/music.h"
#include "core/sanitize.h"
#include "core/subcarrier_weighting.h"
#include "experiments/scenario.h"

using namespace mulink;
namespace ex = mulink::experiments;

namespace {

struct Fixture {
  ex::LinkCase link = ex::MakeClassroomLink();
  nic::ChannelSimulator sim = ex::MakeSimulator(link);
  Rng rng{77};
  std::vector<wifi::CsiPacket> calibration =
      sim.CaptureSession(400, std::nullopt, rng);
  std::vector<wifi::CsiPacket> window =
      sim.CaptureSession(25, std::nullopt, rng);
  std::vector<wifi::CsiPacket> sanitized =
      core::SanitizePhase(window, sim.band());
};

Fixture& Shared() {
  static Fixture fixture;
  return fixture;
}

void BM_CapturePacket(benchmark::State& state) {
  auto& f = Shared();
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.sim.CapturePacket(std::nullopt, f.rng));
  }
}
BENCHMARK(BM_CapturePacket);

void BM_SanitizePhase(benchmark::State& state) {
  auto& f = Shared();
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::SanitizePhase(f.window[0], f.sim.band()));
  }
}
BENCHMARK(BM_SanitizePhase);

void BM_MultipathFactors(benchmark::State& state) {
  auto& f = Shared();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::MeasureMultipathFactors(f.sanitized[0], f.sim.band()));
  }
}
BENCHMARK(BM_MultipathFactors);

void BM_SubcarrierWeights(benchmark::State& state) {
  auto& f = Shared();
  const auto mu = core::MeasureMultipathFactors(f.sanitized, f.sim.band());
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::ComputeSubcarrierWeights(mu));
  }
}
BENCHMARK(BM_SubcarrierWeights);

void BM_SampleCovariance(benchmark::State& state) {
  auto& f = Shared();
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::SampleCovariance(f.sanitized));
  }
}
BENCHMARK(BM_SampleCovariance);

void BM_MusicSpectrum(benchmark::State& state) {
  auto& f = Shared();
  const auto cov = core::SampleCovariance(f.sanitized);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::ComputeMusicSpectrum(cov, f.sim.array(), f.sim.band()));
  }
}
BENCHMARK(BM_MusicSpectrum);

void BM_BartlettSpectrum(benchmark::State& state) {
  auto& f = Shared();
  const auto cov = core::SampleCovariance(f.sanitized);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::ComputeBartlettSpectrum(cov, f.sim.array(), f.sim.band()));
  }
}
BENCHMARK(BM_BartlettSpectrum);

void BM_ScoreWindow(benchmark::State& state) {
  auto& f = Shared();
  core::DetectorConfig config;
  config.scheme = static_cast<core::DetectionScheme>(state.range(0));
  const auto detector = core::Detector::Calibrate(f.calibration, f.sim.band(),
                                                  f.sim.array(), config);
  for (auto _ : state) {
    benchmark::DoNotOptimize(detector.Score(f.window));
  }
}
BENCHMARK(BM_ScoreWindow)
    ->Arg(static_cast<int>(core::DetectionScheme::kBaseline))
    ->Arg(static_cast<int>(core::DetectionScheme::kSubcarrierWeighting))
    ->Arg(static_cast<int>(core::DetectionScheme::kSubcarrierAndPathWeighting))
    ->Arg(static_cast<int>(core::DetectionScheme::kVarianceMobile));

void BM_Calibrate(benchmark::State& state) {
  auto& f = Shared();
  core::DetectorConfig config;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::Detector::Calibrate(
        f.calibration, f.sim.band(), f.sim.array(), config));
  }
}
BENCHMARK(BM_Calibrate);

}  // namespace

BENCHMARK_MAIN();
