// Fig. 7 — Overall detection performance (ROC curves).
//
// Reruns the paper's Fig. 6 measurement campaign (5 links across two office
// rooms, a 3x3 human-location grid per link, plus empty-room sessions) and
// prints the ROC of the three schemes. Paper reference points (balanced
// accuracy): baseline ~70% TP @ 30% FP, subcarrier weighting 88.2% @ 13.0%,
// subcarrier+path weighting 92.0% @ 4.5%.
#include <iostream>

#include "experiments/campaign.h"
#include "experiments/format.h"
#include "experiments/parallel_runner.h"

using namespace mulink;
namespace ex = mulink::experiments;

int main(int argc, char** argv) {
  const bool smoke = ex::SmokeMode(argc, argv);
  (void)smoke;
  ex::PrintBanner(std::cout, "Fig. 7 — ROC of the three detection schemes");

  ex::CampaignConfig config;
  config.packets_per_location = smoke ? 75 : 600;
  config.calibration_packets = smoke ? 100 : 400;
  config.empty_packets = smoke ? 150 : 1200;
  config.window_packets = 25;
  config.seed = 7;

  // Cases fan out over all cores; the result is bit-identical to the serial
  // RunPaperCampaign.
  const ex::ParallelCampaignRunner runner;
  const auto result = runner.RunPaper(config);

  std::vector<std::vector<std::string>> summary;
  for (const auto& scheme : result.schemes) {
    const auto roc = scheme.Roc();
    const auto best = roc.BestBalancedAccuracy();

    // Print a downsampled ROC series for plotting.
    std::vector<double> fpr, tpr;
    const std::size_t step = std::max<std::size_t>(1, roc.points.size() / 40);
    for (std::size_t i = 0; i < roc.points.size(); i += step) {
      fpr.push_back(roc.points[i].false_positive_rate);
      tpr.push_back(roc.points[i].true_positive_rate);
    }
    fpr.push_back(1.0);
    tpr.push_back(1.0);
    ex::PrintSeries(std::cout,
                    std::string("ROC — ") + core::ToString(scheme.scheme),
                    "false_positive_rate", "true_positive_rate", fpr, tpr);

    summary.push_back({core::ToString(scheme.scheme), ex::Fmt(roc.Auc()),
                       ex::Fmt(best.true_positive_rate * 100.0, 1),
                       ex::Fmt(best.false_positive_rate * 100.0, 1)});
  }

  ex::PrintTable(std::cout, "Balanced operating points",
                 {"scheme", "AUC", "TP %", "FP %"}, summary);

  std::cout << "Paper reference: baseline ~70/30, subcarrier 88.2/13.0, "
               "subcarrier+path 92.0/4.5\n";
  return 0;
}
