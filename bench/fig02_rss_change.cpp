// Fig. 2 — Diverse RSS change trends in multipath-dense indoor scenarios.
//
//  (a) CDF of per-subcarrier RSS change for 500 static human presence
//      locations on/near the LOS of a 4 m link in a 6 m x 8 m classroom.
//      Paper shape: a broad two-sided distribution — drops dominate but a
//      substantial fraction of (location, subcarrier) pairs see RSS *rise*.
//  (b) Per-subcarrier RSS change over time while a person walks across the
//      link; the paper highlights subcarriers 15 and 25 behaving differently
//      (one mostly drops, the other also rises).
#include <algorithm>
#include <iostream>

#include "common/rng.h"
#include "core/sanitize.h"
#include "dsp/stats.h"
#include "experiments/format.h"
#include "experiments/scenario.h"
#include "experiments/workload.h"

using namespace mulink;
namespace ex = mulink::experiments;

namespace {

std::vector<double> ProfileDb(nic::ChannelSimulator& sim, Rng& rng,
                              std::size_t n) {
  const auto clean =
      core::SanitizePhase(sim.CaptureSession(n, std::nullopt, rng), sim.band());
  std::vector<double> profile(sim.band().NumSubcarriers(), 0.0);
  for (std::size_t k = 0; k < profile.size(); ++k) {
    double p = 0.0;
    for (const auto& packet : clean) p += packet.SubcarrierPower(0, k);
    profile[k] =
        10.0 * std::log10(std::max(p / static_cast<double>(clean.size()),
                                   1e-30));
  }
  return profile;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = ex::SmokeMode(argc, argv);
  (void)smoke;
  ex::PrintBanner(std::cout, "Fig. 2a — CDF of RSS change, 500 locations");

  const ex::LinkCase lc = ex::MakeClassroomLink();
  auto sim = ex::MakeSimulator(lc);
  Rng rng(2);
  const auto profile = ProfileDb(sim, rng, 300);

  // 500 static locations along / near the LOS (paper Sec. III-A).
  std::vector<double> changes;
  const auto spots = ex::RandomNearLink(lc, 500, 1.0, rng);
  for (const auto& spot : spots) {
    propagation::HumanBody body;
    body.position = spot.position;
    const auto clean =
        core::SanitizePhase(sim.CaptureSession(10, body, rng), sim.band());
    for (std::size_t k = 0; k < sim.band().NumSubcarriers(); ++k) {
      double p = 0.0;
      for (const auto& packet : clean) p += packet.SubcarrierPower(0, k);
      changes.push_back(
          10.0 * std::log10(std::max(p / static_cast<double>(clean.size()),
                                     1e-30)) -
          profile[k]);
    }
  }

  const auto cdf = dsp::EmpiricalCdf(changes, 41);
  std::vector<double> xs, ys;
  for (const auto& point : cdf) {
    xs.push_back(point.value);
    ys.push_back(point.probability);
  }
  ex::PrintSeries(std::cout, "CDF of subcarrier RSS change", "rss_change_db",
                  "cdf", xs, ys);

  const double frac_drop = dsp::CdfAt(changes, -0.5);
  const double frac_rise = 1.0 - dsp::CdfAt(changes, 0.5);
  std::cout << "fraction with drop < -0.5 dB: " << ex::Fmt(frac_drop) << "\n"
            << "fraction with rise > +0.5 dB: " << ex::Fmt(frac_rise) << "\n"
            << "(paper: both signs present — multipath links react "
               "diversely, not drop-only)\n";

  ex::PrintBanner(std::cout,
                  "Fig. 2b — RSS change while a person crosses the link");

  const auto trace = ex::CrossLinkWalk(lc, 0.5, 2.0);
  propagation::HumanBody body;
  // 8 s walk at 0.5 m/s = 400 packets at 50 pkt/s; crossing near packet 200.
  const auto packets = sim.CaptureWalk(400, body, trace.from, trace.to, 0.5,
                                       rng);
  const auto clean = core::SanitizePhase(packets, sim.band());

  // Sliding 10-packet mean RSS per subcarrier, printed for the paper's two
  // featured subcarriers (index 15 and 25, 1-based -> positions 14 and 24).
  for (std::size_t featured : {std::size_t{14}, std::size_t{24}}) {
    std::vector<double> t, db;
    for (std::size_t start = 0; start + 10 <= clean.size(); start += 10) {
      double p = 0.0;
      for (std::size_t i = start; i < start + 10; ++i) {
        p += clean[i].SubcarrierPower(0, featured);
      }
      t.push_back(static_cast<double>(start));
      db.push_back(10.0 * std::log10(std::max(p / 10.0, 1e-30)) -
                   profile[featured]);
    }
    ex::PrintSeries(std::cout,
                    "subcarrier " + std::to_string(featured + 1) +
                        " RSS change during walk",
                    "packet_index", "rss_change_db", t, db);
    std::cout << "  min " << ex::Fmt(dsp::Min(db)) << " dB, max "
              << ex::Fmt(dsp::Max(db)) << " dB\n\n";
  }

  // The headline of Fig. 2b: subcarriers disagree — at some instant one
  // subcarrier drops while another rises.
  std::size_t disagree = 0, windows = 0;
  for (std::size_t start = 0; start + 10 <= clean.size(); start += 10) {
    double min_change = 1e9, max_change = -1e9;
    for (std::size_t k = 0; k < sim.band().NumSubcarriers(); ++k) {
      double p = 0.0;
      for (std::size_t i = start; i < start + 10; ++i) {
        p += clean[i].SubcarrierPower(0, k);
      }
      const double change =
          10.0 * std::log10(std::max(p / 10.0, 1e-30)) - profile[k];
      min_change = std::min(min_change, change);
      max_change = std::max(max_change, change);
    }
    ++windows;
    if (min_change < -0.5 && max_change > 0.5) ++disagree;
  }
  std::cout << "windows where subcarriers disagree in sign (>0.5 dB both "
               "ways): "
            << disagree << "/" << windows << "\n";
  return 0;
}
