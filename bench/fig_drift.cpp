// Drift campaign — adaptive vs static calibration over a simulated week.
//
// The paper's 92% / 4.5% operating point is measured minutes after
// calibration; this bench asks what is left of it after 7 simulated days of
// the long-horizon faults real deployments see: a slow multiplicative gain
// ramp (RF front-end temperature drift), a furniture move (step change in
// the static multipath profile), and daily scheduled AGC retrains. Two
// engines consume the IDENTICAL packet stream per link: one with the
// core/calibration recalibration ladder enabled, one frozen on its day-0
// profile and threshold. The adaptive arm must hold the operating point
// (>= 90% detection at <= 5.5% FP over the full horizon) while the static
// arm visibly decays.
//
// Emits BENCH_drift.json (schema-gated in CI by check_bench_schema.sh) with
// overall and per-day rates for both arms, ladder statistics, and a
// determinism section proving the campaign is bit-identical across 1/2/4
// worker threads (per-link work is independent and deterministic; results
// merge in link order).
#include <fstream>
#include <iostream>
#include <sstream>
#include <thread>

#include "common/assert.h"
#include "common/rng.h"
#include "core/detector.h"
#include "core/engine.h"
#include "experiments/format.h"
#include "experiments/scenario.h"
#include "experiments/workload.h"

using namespace mulink;
namespace ex = mulink::experiments;

namespace {

struct CampaignShape {
  std::size_t links = 3;
  std::size_t days = 7;
  std::size_t hours_per_day = 24;
  std::size_t windows_per_hour = 12;
  // 50-packet windows: a 25-packet sample covariance over 3 antennas x 30
  // subcarriers is noisy enough that vacant scores carry a heavy tail
  // (several percent of clean windows flip on some links); doubling the
  // window drops the clean false-positive floor below 1% on every paper
  // link, which is the headroom the drift campaign's 5.5% budget lives in.
  std::size_t window_packets = 50;
  // Occupancy is episodic, like a real deployment day: one walk-in episode
  // of episode_windows consecutive occupied windows in every hour where
  // hour-of-day % occupied_hour_stride == occupied_hour_stride / 2 (4
  // episodes/day at stride 6). Everything else is vacant — the FP
  // denominator and the ladder's quiet-evidence diet.
  std::size_t occupied_hour_stride = 6;
  std::size_t episode_start_window = 3;
  std::size_t episode_windows = 6;

  // Long-horizon fault process (per link, per-packet clock). At 14400
  // packets per simulated day the ramp gains ~1.1 dB/day — a window's
  // score crosses the day-0 threshold near 1.2-1.5 dB, so the static arm
  // starts leaking false positives during day 1-2 while the adaptive arm
  // must re-baseline repeatedly to stay ahead. The furniture move fires
  // once, mid-campaign (day 3.5); AGC retrains once per day.
  double drift_ramp_db_per_1k = 0.075;
  double drift_ramp_max_db = 9.0;
  std::size_t furniture_step_packets = 50400;
  double furniture_step_sigma_db = 1.0;
  std::size_t agc_schedule_every_packets = 14400;

  // Smoke compresses the clock ~100x, so the ladder's confirmation and
  // evidence-collection spans shrink with it.
  bool fast_ladder = false;

  std::size_t WindowsPerHour() const { return windows_per_hour; }
  std::size_t Hours() const { return days * hours_per_day; }
  bool OccupiedTruth(std::size_t hour, std::size_t window_in_hour) const {
    return hour % occupied_hour_stride == occupied_hour_stride / 2 &&
           window_in_hour >= episode_start_window &&
           window_in_hour < episode_start_window + episode_windows;
  }
};

struct DayTally {
  std::size_t tp = 0, fn = 0, fp = 0, tn = 0;
  double DetectionPct() const {
    const std::size_t n = tp + fn;
    return n > 0 ? 100.0 * static_cast<double>(tp) / static_cast<double>(n)
                 : 0.0;
  }
  double FpPct() const {
    const std::size_t n = fp + tn;
    return n > 0 ? 100.0 * static_cast<double>(fp) / static_cast<double>(n)
                 : 0.0;
  }
};

struct ArmResult {
  std::vector<DayTally> per_day;
  DayTally overall;
  // Ladder statistics (all zero for the static arm).
  std::uint64_t quiet_windows = 0;
  std::uint64_t profile_swaps = 0;
  std::uint64_t agc_rebaselines = 0;
  std::string final_state = "healthy";
};

struct LinkResult {
  ArmResult adaptive;
  ArmResult statics;
};

void Tally(ArmResult& arm, std::size_t day, bool truth, bool decided) {
  DayTally& d = arm.per_day[day];
  if (truth) {
    ++(decided ? d.tp : d.fn);
    ++(decided ? arm.overall.tp : arm.overall.fn);
  } else {
    ++(decided ? d.fp : d.tn);
    ++(decided ? arm.overall.fp : arm.overall.tn);
  }
}

// One link's whole campaign: calibrate on a clean day-0 twin, then stream
// the drifting week through the adaptive and the static engine in lockstep.
LinkResult RunLink(const ex::LinkCase& link_case, const CampaignShape& shape,
                   std::uint64_t seed) {
  // Day-0 calibration on a clean simulator: the deployment's fresh profile.
  auto clean = ex::MakeSimulator(link_case);
  Rng calib_rng(seed);
  core::DetectorConfig config;
  config.scheme = core::DetectionScheme::kSubcarrierAndPathWeighting;
  auto detector =
      core::Detector::Calibrate(clean.CaptureSession(400, std::nullopt,
                                                     calib_rng),
                                clean.band(), clean.array(), config);
  std::vector<std::vector<wifi::CsiPacket>> empty_windows;
  std::vector<double> empty_scores;
  for (int i = 0; i < 16; ++i) {
    empty_windows.push_back(
        clean.CaptureSession(shape.window_packets, std::nullopt, calib_rng));
    empty_scores.push_back(detector.Score(empty_windows.back()));
  }
  detector.CalibrateThreshold(empty_windows);

  // The drifting week: same link, long-horizon faults on the capture chain.
  auto sim_config = ex::DefaultSimConfig();
  sim_config.faults.enabled = true;
  sim_config.faults.seed = seed;
  sim_config.faults.drift_ramp_db_per_1k = shape.drift_ramp_db_per_1k;
  sim_config.faults.drift_ramp_max_db = shape.drift_ramp_max_db;
  sim_config.faults.furniture_step_packets = shape.furniture_step_packets;
  sim_config.faults.furniture_step_sigma_db = shape.furniture_step_sigma_db;
  sim_config.faults.agc_schedule_every_packets =
      shape.agc_schedule_every_packets;
  auto sim = ex::MakeSimulator(link_case, sim_config);

  core::StreamingConfig stream;
  stream.window_packets = shape.window_packets;
  stream.hop_packets = shape.window_packets;
  stream.use_hmm = true;
  // Rooms here change occupancy on the minutes scale; the HMM default
  // (2% per window) is tuned for far longer dwells and would hold the
  // occupied belief for several windows after a walk-out, charging false
  // positives to every episode tail. Both arms get the same setting.
  stream.hmm.transition_prob = 0.1;
  // Emission geometry for 50-packet windows. The tight quiet fit (log-sigma
  // ~0.1 at this window length) would put the default occupied shift (4
  // sigma) at only ~1.5x the quiet mean — inside the vacant tail — so the
  // shift is widened until the flip point sits ~2.75 quiet-sigmas out. The
  // broad occupied sigma flattens the occupied likelihood so that weak
  // mid-episode windows are carried by the temporal prior instead of being
  // overruled by a confident empty verdict.
  stream.hmm.occupied_shift_sigmas = 8.0;
  stream.hmm.occupied_sigma_scale = 5.0;
  // The wide occupied emission shifts probability mass toward "empty" for
  // weak presence; a slightly lower decision bar rebalances the operating
  // point. Both arms decide with the same rule.
  stream.decision_probability = 0.4;
  stream.guard_enabled = true;
  core::StreamingConfig adaptive_stream = stream;
  adaptive_stream.calibration.enabled = true;
  // The HMM posterior under active drift sits above the conservative
  // default before the ladder has confirmed anything; windows the filter
  // still calls probably-empty are acceptable evidence here (occupied
  // windows saturate near 1 either way).
  adaptive_stream.calibration.quiet_posterior_max = 0.4;
  // Trigger recalibration earlier than the default 0.9: under a continuous
  // ramp the corridor between "EWMA near threshold" and "scores above
  // threshold" is a fraction of a dB, and the swap needs ~16 quiet windows
  // of runway inside it.
  adaptive_stream.calibration.drift_score_fraction = 0.75;
  // The HMM's flip point tracks the quiet posterior window-by-window, so
  // the trigger no longer races the filter — it only has to fire before
  // the quiet gates (~2x the anchored level) starve the EWMA of evidence.
  // A fast EWMA with short confirmation/collection keeps the swap cycle
  // well under an hour of simulated time once the trigger does fire.
  adaptive_stream.calibration.drift_ewma_alpha = 0.3;
  adaptive_stream.calibration.drift_confirm_windows = 2;
  adaptive_stream.calibration.recalibration_quiet_windows = 6;
  if (shape.fast_ladder) {
    adaptive_stream.calibration.drift_ewma_alpha = 0.3;
    adaptive_stream.calibration.drift_confirm_windows = 2;
    adaptive_stream.calibration.recalibration_quiet_windows = 4;
    adaptive_stream.calibration.heal_windows = 4;
  }

  core::SensingEngine engine;
  const std::size_t kAdaptive =
      engine.AddLink(detector, empty_scores, adaptive_stream);
  const std::size_t kStatic =
      engine.AddLink(detector, empty_scores, stream);

  LinkResult result;
  result.adaptive.per_day.resize(shape.days);
  result.statics.per_day.resize(shape.days);

  Rng rng(seed + 17);
  const auto grid = ex::Grid3x3(link_case);
  std::size_t window_index = 0;
  for (std::size_t hour = 0; hour < shape.Hours(); ++hour) {
    const std::size_t day = hour / shape.hours_per_day;
    for (std::size_t w = 0; w < shape.WindowsPerHour(); ++w, ++window_index) {
      const bool occupied_truth = shape.OccupiedTruth(hour, w);
      std::optional<propagation::HumanBody> human;
      if (occupied_truth) {
        propagation::HumanBody body;
        body.position = grid[window_index % grid.size()].position;
        human = body;
      }
      const auto burst =
          sim.CaptureSession(shape.window_packets, human, rng);
      for (const auto link :
           {std::size_t{kAdaptive}, std::size_t{kStatic}}) {
        const auto& batch = engine.ProcessBatch(
            link, std::span<const wifi::CsiPacket>(burst));
        // No drop/reorder faults are configured, so every burst completes
        // exactly one window.
        MULINK_REQUIRE(batch.decisions.size() == 1,
                       "fig_drift: burst did not complete one window");
        Tally(link == kAdaptive ? result.adaptive : result.statics, day,
              occupied_truth, batch.decisions[0].occupied);
      }
    }
  }

  const nic::LinkHealth health = engine.Health(kAdaptive);
  result.adaptive.quiet_windows = health.quiet_windows;
  result.adaptive.profile_swaps = health.profile_swaps;
  result.adaptive.agc_rebaselines = engine.Calibrator(kAdaptive).agc_rebaselines();
  result.adaptive.final_state = nic::ToString(health.calibration_state);
  return result;
}

// Merge per-link tallies (already ordered by link index).
ArmResult MergeArm(const std::vector<LinkResult>& links, bool adaptive,
                   std::size_t days) {
  ArmResult merged;
  merged.per_day.resize(days);
  for (const auto& link : links) {
    const ArmResult& arm = adaptive ? link.adaptive : link.statics;
    for (std::size_t d = 0; d < days; ++d) {
      merged.per_day[d].tp += arm.per_day[d].tp;
      merged.per_day[d].fn += arm.per_day[d].fn;
      merged.per_day[d].fp += arm.per_day[d].fp;
      merged.per_day[d].tn += arm.per_day[d].tn;
    }
    merged.overall.tp += arm.overall.tp;
    merged.overall.fn += arm.overall.fn;
    merged.overall.fp += arm.overall.fp;
    merged.overall.tn += arm.overall.tn;
    merged.quiet_windows += arm.quiet_windows;
    merged.profile_swaps += arm.profile_swaps;
    merged.agc_rebaselines += arm.agc_rebaselines;
  }
  return merged;
}

// Deterministic fingerprint of a campaign run: every integer tally in link
// order. Two runs are bit-identical iff their fingerprints match.
std::string Fingerprint(const std::vector<LinkResult>& links) {
  std::ostringstream os;
  for (const auto& link : links) {
    for (const ArmResult* arm : {&link.adaptive, &link.statics}) {
      for (const auto& d : arm->per_day) {
        os << d.tp << ',' << d.fn << ',' << d.fp << ',' << d.tn << ';';
      }
      os << arm->quiet_windows << '/' << arm->profile_swaps << '/'
         << arm->agc_rebaselines << '/' << arm->final_state << '|';
    }
  }
  return os.str();
}

// Run all links on `threads` workers. Each link's campaign is sequential
// and self-seeded; workers pick links round-robin and write into their own
// slot, so the result vector is independent of the thread count.
std::vector<LinkResult> RunCampaign(const std::vector<ex::LinkCase>& cases,
                                    const CampaignShape& shape,
                                    std::size_t threads) {
  std::vector<LinkResult> results(cases.size());
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) {
    workers.emplace_back([&, t]() {
      for (std::size_t i = t; i < cases.size(); i += threads) {
        results[i] = RunLink(cases[i], shape, /*seed=*/101 + 13 * i);
      }
    });
  }
  for (auto& worker : workers) worker.join();
  return results;
}

void WriteArmJson(std::ostream& out, const char* name, const ArmResult& arm,
                  bool with_ladder) {
  out << "  \"" << name << "\": {\n"
      << "    \"detection_pct\": " << arm.overall.DetectionPct() << ",\n"
      << "    \"fp_pct\": " << arm.overall.FpPct() << ",\n";
  if (with_ladder) {
    out << "    \"quiet_windows\": " << arm.quiet_windows << ",\n"
        << "    \"profile_swaps\": " << arm.profile_swaps << ",\n"
        << "    \"agc_rebaselines\": " << arm.agc_rebaselines << ",\n";
  }
  out << "    \"per_day\": [\n";
  for (std::size_t d = 0; d < arm.per_day.size(); ++d) {
    const auto& day = arm.per_day[d];
    out << "      {\"day\": " << d
        << ", \"detection_pct\": " << day.DetectionPct()
        << ", \"fp_pct\": " << day.FpPct() << "}"
        << (d + 1 < arm.per_day.size() ? "," : "") << "\n";
  }
  out << "    ]\n  }";
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = ex::SmokeMode(argc, argv);
  ex::PrintBanner(std::cout,
                  "Drift campaign — adaptive vs static calibration");

  CampaignShape shape;
  std::vector<std::size_t> thread_counts = {1, 2, 4};
  if (smoke) {
    // Same code paths, compressed clock: faster ramp, earlier furniture
    // move, hourly AGC bursts, one link, a day and a half.
    shape.links = 1;
    shape.days = 2;
    shape.hours_per_day = 3;
    shape.occupied_hour_stride = 3;
    shape.drift_ramp_db_per_1k = 0.3;
    shape.drift_ramp_max_db = 9.0;
    shape.furniture_step_packets = 2000;
    shape.agc_schedule_every_packets = 1000;
    shape.fast_ladder = true;
    thread_counts = {1, 2};
  }

  const auto all_cases = ex::MakePaperCases();
  MULINK_REQUIRE(shape.links <= all_cases.size(),
                 "fig_drift: more links requested than paper cases");
  const std::vector<ex::LinkCase> cases(all_cases.begin(),
                                        all_cases.begin() +
                                            static_cast<std::ptrdiff_t>(
                                                shape.links));

  // Determinism sweep: the same campaign on every thread count must produce
  // identical tallies (per-link work is independent; merge order is fixed).
  std::vector<LinkResult> results;
  std::string reference_fingerprint;
  bool bit_identical = true;
  for (const std::size_t threads : thread_counts) {
    auto run = RunCampaign(cases, shape, threads);
    const std::string fingerprint = Fingerprint(run);
    if (threads == thread_counts.front()) {
      reference_fingerprint = fingerprint;
      results = std::move(run);
    } else if (fingerprint != reference_fingerprint) {
      bit_identical = false;
      std::cout << "DETERMINISM FAILURE at " << threads << " threads\n";
    }
  }

  const ArmResult adaptive = MergeArm(results, /*adaptive=*/true, shape.days);
  const ArmResult statics = MergeArm(results, /*adaptive=*/false, shape.days);

  std::vector<std::vector<std::string>> rows;
  for (std::size_t d = 0; d < shape.days; ++d) {
    rows.push_back({"day " + std::to_string(d),
                    ex::Fmt(adaptive.per_day[d].DetectionPct(), 1),
                    ex::Fmt(adaptive.per_day[d].FpPct(), 1),
                    ex::Fmt(statics.per_day[d].DetectionPct(), 1),
                    ex::Fmt(statics.per_day[d].FpPct(), 1)});
  }
  rows.push_back({"overall", ex::Fmt(adaptive.overall.DetectionPct(), 1),
                  ex::Fmt(adaptive.overall.FpPct(), 1),
                  ex::Fmt(statics.overall.DetectionPct(), 1),
                  ex::Fmt(statics.overall.FpPct(), 1)});
  ex::PrintTable(std::cout, "detection / false-positive rates per day (%)",
                 {"day", "adaptive TP%", "adaptive FP%", "static TP%",
                  "static FP%"},
                 rows);
  std::cout << "ladder: " << adaptive.quiet_windows << " quiet windows, "
            << adaptive.profile_swaps << " profile swaps, "
            << adaptive.agc_rebaselines << " AGC re-baselines\n"
            << "determinism: "
            << (bit_identical ? "bit-identical" : "MISMATCH") << " across ";
  for (std::size_t i = 0; i < thread_counts.size(); ++i) {
    std::cout << (i ? "/" : "") << thread_counts[i];
  }
  std::cout << " threads\n";

  std::ofstream out("BENCH_drift.json");
  out << "{\n  \"benchmark\": \"fig_drift\",\n"
      << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n"
      << "  \"days\": " << shape.days << ",\n"
      << "  \"links\": " << shape.links << ",\n"
      << "  \"window_packets\": " << shape.window_packets << ",\n"
      << "  \"windows_per_hour\": " << shape.WindowsPerHour() << ",\n"
      << "  \"hours_per_day\": " << shape.hours_per_day << ",\n"
      << "  \"faults\": {\"drift_ramp_db_per_1k\": "
      << shape.drift_ramp_db_per_1k
      << ", \"drift_ramp_max_db\": " << shape.drift_ramp_max_db
      << ", \"furniture_step_packets\": " << shape.furniture_step_packets
      << ", \"agc_schedule_every_packets\": "
      << shape.agc_schedule_every_packets << "},\n";
  WriteArmJson(out, "adaptive", adaptive, /*with_ladder=*/true);
  out << ",\n";
  WriteArmJson(out, "static", statics, /*with_ladder=*/false);
  out << ",\n  \"determinism\": {\"thread_counts\": [";
  for (std::size_t i = 0; i < thread_counts.size(); ++i) {
    out << (i ? ", " : "") << thread_counts[i];
  }
  out << "], \"bit_identical\": " << (bit_identical ? "true" : "false")
      << "}\n}\n";
  std::cout << "wrote BENCH_drift.json\n";

  if (!bit_identical) return 1;
  if (!smoke) {
    // The acceptance gate: the adaptive arm holds the paper's operating
    // point over the whole horizon; the smoke run only proves the code
    // paths execute.
    const bool holds = adaptive.overall.DetectionPct() >= 90.0 &&
                       adaptive.overall.FpPct() <= 5.5;
    std::cout << (holds ? "PASS" : "FAIL")
              << ": adaptive arm vs >=90% detection at <=5.5% FP\n";
    if (!holds) return 1;
  }
  return 0;
}
