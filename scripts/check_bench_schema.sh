#!/usr/bin/env bash
# Schema check for the benchmark JSON artifacts CI uploads.
#
# Dispatches on the artifact's top-level "benchmark" field:
#   * BENCH_engine.json (micro_core) — CI fails here if a refactor silently
#     drops the per-stage breakdown or the counting-allocator columns, the
#     two signals that prove the engine's observability stays cheap
#     (metrics_overhead_pct) and allocation-free
#     (engine*_allocs_per_decision == 0 in steady state).
#   * BENCH_drift.json (fig_drift) — CI fails if the drift campaign loses
#     either arm, the per-day decay curves, the adaptive arm's ladder
#     statistics, or the multi-thread determinism verdict (bit_identical
#     must be true).
#   * BENCH_serve.json (mulink_serve) — CI fails if the serving tier loses
#     its fleet rows, the per-shard queue-depth percentiles, the headline's
#     zero-allocation guarantee, the scaling curve, or the shard-count
#     determinism verdict (bit_identical must be true).
#
# usage: check_bench_schema.sh <path/to/BENCH_*.json>
set -euo pipefail

json="${1:?usage: check_bench_schema.sh <BENCH_*.json>}"

python3 - "$json" <<'EOF'
import json
import sys

path = sys.argv[1]
with open(path) as f:
    doc = json.load(f)

errors = []

def require(cond, message):
    if not cond:
        errors.append(message)


def check_engine(doc):
    for key in ("benchmark", "window_packets", "hop_packets", "stream_packets",
                "schemes", "obs_enabled", "stages", "roofline"):
        require(key in doc, f"missing top-level key '{key}'")

    scheme_keys = (
        "scheme",
        "legacy_ns_per_decision", "legacy_allocs_per_decision",
        "scratch_ns_per_decision", "scratch_allocs_per_decision",
        "engine_ns_per_decision", "engine_allocs_per_decision",
        "engine_metrics_ns_per_decision", "engine_metrics_allocs_per_decision",
        "metrics_overhead_pct", "speedup",
    )
    rows = doc.get("schemes", [])
    require(len(rows) == 4, f"expected 4 scheme rows, found {len(rows)}")
    for row in rows:
        for key in scheme_keys:
            require(key in row,
                    f"scheme row {row.get('scheme', '?')} lost '{key}'")

    # Steady-state decisions must stay allocation-free, with or without
    # metrics.
    for row in rows:
        for key in ("engine_allocs_per_decision",
                    "engine_metrics_allocs_per_decision"):
            value = row.get(key)
            require(isinstance(value, (int, float)) and value == 0,
                    f"{row.get('scheme', '?')}: {key} = {value}, expected 0")

    # The named pipeline stages must all be present in the breakdown.
    stage_names = (
        "guard_classify", "ingest_sanitize", "subcarrier_weighting",
        "music_path_weighting", "score", "hmm_filter", "fusion",
        "calibrate", "capture", "case",
    )
    stages = doc.get("stages", {})
    for name in stage_names:
        require(name in stages, f"stages object lost '{name}'")
        for key in ("count", "ns_per_decision", "mean_ns"):
            require(key in stages.get(name, {}),
                    f"stage '{name}' lost '{key}'")

    # With obs compiled in, the hot stages must actually have samples (the
    # HMM and fusion stages legitimately stay zero: micro_core runs hmm off,
    # single link).
    if doc.get("obs_enabled"):
        for name in ("score", "ingest_sanitize", "music_path_weighting"):
            require(stages.get(name, {}).get("count", 0) > 0,
                    f"obs enabled but stage '{name}' recorded no samples")

    # Per-stage roofline rows for the combined scheme: analytic traffic and
    # arithmetic per decision alongside the measured time. Losing a row (or
    # the analytic columns going non-positive) means the kernel-layer
    # accounting in WriteEngineJson fell out of sync with the pipeline.
    roofline_stages = ("ingest_sanitize", "subcarrier_weighting",
                      "music_path_weighting", "score")
    roofline = doc.get("roofline", {})
    for name in roofline_stages:
        require(name in roofline, f"roofline object lost '{name}'")
        row = roofline.get(name, {})
        for key in ("bytes_per_decision", "flops_per_decision",
                    "ns_per_decision"):
            require(key in row, f"roofline '{name}' lost '{key}'")
        for key in ("bytes_per_decision", "flops_per_decision"):
            value = row.get(key)
            require(isinstance(value, (int, float)) and value > 0,
                    f"roofline '{name}': {key} = {value}, expected > 0")

    return (f"{len(rows)} schemes, {len(stages)} stages, "
            f"{len(roofline)} roofline rows, "
            f"obs_enabled={doc.get('obs_enabled')}")


def check_drift(doc):
    for key in ("benchmark", "smoke", "days", "links", "window_packets",
                "windows_per_hour", "hours_per_day", "faults", "adaptive",
                "static", "determinism"):
        require(key in doc, f"missing top-level key '{key}'")

    faults = doc.get("faults", {})
    for key in ("drift_ramp_db_per_1k", "drift_ramp_max_db",
                "furniture_step_packets", "agc_schedule_every_packets"):
        require(key in faults, f"faults object lost '{key}'")

    days = doc.get("days", 0)
    for arm in ("adaptive", "static"):
        row = doc.get(arm, {})
        for key in ("detection_pct", "fp_pct", "per_day"):
            require(key in row, f"arm '{arm}' lost '{key}'")
        per_day = row.get("per_day", [])
        require(len(per_day) == days,
                f"arm '{arm}': {len(per_day)} per-day rows, expected {days}")
        for day in per_day:
            for key in ("day", "detection_pct", "fp_pct"):
                require(key in day, f"arm '{arm}' per-day row lost '{key}'")

    # The ladder statistics only exist on the adaptive arm — losing them
    # means the campaign stopped exercising the calibration subsystem.
    for key in ("quiet_windows", "profile_swaps", "agc_rebaselines"):
        require(key in doc.get("adaptive", {}), f"adaptive arm lost '{key}'")

    determinism = doc.get("determinism", {})
    require(len(determinism.get("thread_counts", [])) >= 2,
            "determinism ran fewer than 2 thread counts")
    require(determinism.get("bit_identical") is True,
            "campaign is not bit-identical across thread counts")

    return (f"{days} days x {doc.get('links')} links, "
            f"smoke={doc.get('smoke')}, "
            f"bit_identical={determinism.get('bit_identical')}")


def check_serve(doc):
    for key in ("benchmark", "smoke", "scheme", "window_packets",
                "hop_packets", "queue_capacity", "policy",
                "hardware_concurrency", "rows", "scaling", "headline",
                "determinism"):
        require(key in doc, f"missing top-level key '{key}'")

    row_keys = ("links", "shards", "window_packets", "churn",
                "frames_routed", "decisions", "elapsed_s", "decisions_per_s",
                "allocs_per_decision", "links_admitted", "links_evicted",
                "queue_depth")
    rows = doc.get("rows", [])
    require(len(rows) >= 2, f"expected >= 2 fleet rows, found {len(rows)}")
    for row in rows:
        for key in row_keys:
            require(key in row,
                    f"fleet row links={row.get('links', '?')} lost '{key}'")
        depths = row.get("queue_depth", [])
        require(len(depths) == row.get("shards"),
                f"fleet row links={row.get('links', '?')}: "
                f"{len(depths)} depth rows for {row.get('shards')} shards")
        for depth in depths:
            for key in ("p50", "p90", "p99", "max", "samples"):
                require(key in depth, f"queue_depth row lost '{key}'")
        # Resident (non-churn) fleets must stay allocation-free per
        # decision; churn rows legitimately allocate on the admission path.
        if not row.get("churn"):
            value = row.get("allocs_per_decision")
            require(isinstance(value, (int, float)) and value == 0,
                    f"resident fleet links={row.get('links', '?')}: "
                    f"allocs_per_decision = {value}, expected 0")

    scaling = doc.get("scaling", [])
    require(len(scaling) >= 2,
            f"scaling curve has {len(scaling)} points, expected >= 2")
    for point in scaling:
        for key in ("shards", "links", "decisions_per_s", "oversubscribed"):
            require(key in point, f"scaling point lost '{key}'")

    headline = doc.get("headline", {})
    for key in ("links", "shards", "window_packets", "decisions_per_s",
                "allocs_per_decision"):
        require(key in headline, f"headline lost '{key}'")
    require(headline.get("allocs_per_decision") == 0,
            "headline fleet is not allocation-free per decision")

    determinism = doc.get("determinism", {})
    require(len(determinism.get("shard_counts", [])) >= 2,
            "determinism ran fewer than 2 shard counts")
    require(determinism.get("bit_identical") is True,
            "decision log is not bit-identical across shard counts")

    return (f"{len(rows)} fleet rows, {len(scaling)} scaling points, "
            f"headline {headline.get('decisions_per_s')} decisions/s, "
            f"smoke={doc.get('smoke')}, "
            f"bit_identical={determinism.get('bit_identical')}")


if doc.get("benchmark") == "fig_drift":
    summary = check_drift(doc)
elif doc.get("benchmark") == "mulink_serve":
    summary = check_serve(doc)
else:
    summary = check_engine(doc)

if errors:
    for error in errors:
        print(f"schema check FAILED: {error}", file=sys.stderr)
    sys.exit(1)
print(f"schema check OK: {path} ({summary})")
EOF
