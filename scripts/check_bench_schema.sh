#!/usr/bin/env bash
# Schema check for the BENCH_engine.json artifact micro_core emits.
#
# CI fails here if a refactor silently drops the per-stage breakdown or the
# counting-allocator columns — the two signals that prove the engine's
# observability stays cheap (metrics_overhead_pct) and allocation-free
# (engine*_allocs_per_decision == 0 in steady state).
#
# usage: check_bench_schema.sh <path/to/BENCH_engine.json>
set -euo pipefail

json="${1:?usage: check_bench_schema.sh <BENCH_engine.json>}"

python3 - "$json" <<'EOF'
import json
import sys

path = sys.argv[1]
with open(path) as f:
    doc = json.load(f)

errors = []

def require(cond, message):
    if not cond:
        errors.append(message)

for key in ("benchmark", "window_packets", "hop_packets", "stream_packets",
            "schemes", "obs_enabled", "stages"):
    require(key in doc, f"missing top-level key '{key}'")

scheme_keys = (
    "scheme",
    "legacy_ns_per_decision", "legacy_allocs_per_decision",
    "scratch_ns_per_decision", "scratch_allocs_per_decision",
    "engine_ns_per_decision", "engine_allocs_per_decision",
    "engine_metrics_ns_per_decision", "engine_metrics_allocs_per_decision",
    "metrics_overhead_pct", "speedup",
)
rows = doc.get("schemes", [])
require(len(rows) == 4, f"expected 4 scheme rows, found {len(rows)}")
for row in rows:
    for key in scheme_keys:
        require(key in row, f"scheme row {row.get('scheme', '?')} lost '{key}'")

# Steady-state decisions must stay allocation-free, with or without metrics.
for row in rows:
    for key in ("engine_allocs_per_decision",
                "engine_metrics_allocs_per_decision"):
        value = row.get(key)
        require(isinstance(value, (int, float)) and value == 0,
                f"{row.get('scheme', '?')}: {key} = {value}, expected 0")

# The named pipeline stages must all be present in the breakdown.
stage_names = (
    "guard_classify", "ingest_sanitize", "subcarrier_weighting",
    "music_path_weighting", "score", "hmm_filter", "fusion",
    "calibrate", "capture", "case",
)
stages = doc.get("stages", {})
for name in stage_names:
    require(name in stages, f"stages object lost '{name}'")
    for key in ("count", "ns_per_decision", "mean_ns"):
        require(key in stages.get(name, {}), f"stage '{name}' lost '{key}'")

# With obs compiled in, the hot stages must actually have samples (the HMM
# and fusion stages legitimately stay zero: micro_core runs hmm off,
# single link).
if doc.get("obs_enabled"):
    for name in ("score", "ingest_sanitize", "music_path_weighting"):
        require(stages.get(name, {}).get("count", 0) > 0,
                f"obs enabled but stage '{name}' recorded no samples")

if errors:
    for error in errors:
        print(f"schema check FAILED: {error}", file=sys.stderr)
    sys.exit(1)
print(f"schema check OK: {path} "
      f"({len(rows)} schemes, {len(stages)} stages, "
      f"obs_enabled={doc.get('obs_enabled')})")
EOF
