#!/usr/bin/env bash
# Check (never rewrite) clang-format conformance.
#
# Usage:
#   scripts/check_format.sh FILE...      check the named files
#   scripts/check_format.sh --diff REF   check files changed since REF
#   scripts/check_format.sh --all        check the whole tree
#
# Default (no args): files changed relative to the merge base with main —
# the "no reformat churn beyond files already touched" policy: formatting is
# only ever enforced on code a change is already editing.
#
# Exit codes: 0 clean / 1 files need formatting / 2 usage or env error.
# Like run_clang_tidy.sh, a missing clang-format binary is a skip (exit 0)
# unless MULINK_REQUIRE_CLANG_FORMAT=1 (CI sets it).
set -u
cd "$(dirname "$0")/.."

FMT_BIN="${CLANG_FORMAT:-clang-format}"
if ! command -v "$FMT_BIN" >/dev/null 2>&1; then
  if [ "${MULINK_REQUIRE_CLANG_FORMAT:-0}" = "1" ]; then
    echo "check_format: $FMT_BIN not found and MULINK_REQUIRE_CLANG_FORMAT=1" >&2
    exit 2
  fi
  echo "check_format: $FMT_BIN not found; skipping (enforced in CI)" >&2
  exit 0
fi

declare -a FILES=()
case "${1:-}" in
  --all)
    mapfile -t FILES < <(git ls-files 'src/*' 'tools/*' 'examples/*' \
      'bench/*' 'tests/*' | grep -E '\.(cpp|h|hpp)$' | sort)
    ;;
  --diff)
    REF="${2:?check_format: --diff needs a ref}" || exit 2
    mapfile -t FILES < <(git diff --name-only --diff-filter=d "$REF" -- \
      '*.cpp' '*.h' '*.hpp' | sort)
    ;;
  "")
    BASE="$(git merge-base HEAD origin/main 2>/dev/null \
        || git rev-parse 'HEAD~1' 2>/dev/null || true)"
    if [ -z "$BASE" ]; then
      echo "check_format: cannot determine a base ref; pass files or --all" >&2
      exit 2
    fi
    mapfile -t FILES < <(git diff --name-only --diff-filter=d "$BASE" -- \
      '*.cpp' '*.h' '*.hpp' | sort)
    ;;
  -*)
    echo "check_format: unknown option $1" >&2
    exit 2
    ;;
  *)
    FILES=("$@")
    ;;
esac

[ "${#FILES[@]}" -eq 0 ] && { echo "check_format: nothing to check"; exit 0; }

STATUS=0
for f in "${FILES[@]}"; do
  [ -f "$f" ] || { echo "check_format: no such file: $f" >&2; exit 2; }
  if ! "$FMT_BIN" --dry-run --Werror "$f"; then
    STATUS=1
  fi
done
[ "$STATUS" -eq 0 ] && echo "check_format: ${#FILES[@]} file(s) clean"
exit "$STATUS"
