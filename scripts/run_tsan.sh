#!/usr/bin/env bash
# Configure, build and run the full test suite under ThreadSanitizer.
#
# Usage: scripts/run_tsan.sh [BUILD_DIR] [-- ctest args]
#   BUILD_DIR defaults to build-tsan. Pass extra ctest args after --, e.g.
#   scripts/run_tsan.sh build-tsan -- -R Parallel to focus the campaign
#   determinism tests.
#
# The suppressions file (.tsan-suppressions) is checked in and empty for
# first-party code — races get fixed, not suppressed. history_size is
# raised because the campaign tests run hundreds of windows per thread and
# the default history drops the allocation stacks TSan needs for a useful
# report.
set -eu
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build-tsan}"
shift || true
[ "${1:-}" = "--" ] && shift

# The default build dir goes through the `tsan` preset (CMakePresets.json),
# so local runs and CI configure identically; a custom BUILD_DIR keeps the
# documented explicit-flags path.
if [ "$BUILD_DIR" = "build-tsan" ]; then
  cmake --preset tsan
else
  cmake -B "$BUILD_DIR" -S . -DMULINK_TSAN=ON -DCMAKE_BUILD_TYPE=RelWithDebInfo
fi
cmake --build "$BUILD_DIR" -j "$(nproc)"

export TSAN_OPTIONS="suppressions=$PWD/.tsan-suppressions history_size=7 ${TSAN_OPTIONS:-}"

# Negative control first: the deliberately racy canary MUST be flagged. A
# passing canary means TSan is not armed and a green suite proves nothing.
if TSAN_OPTIONS="$TSAN_OPTIONS halt_on_error=1" \
    "$BUILD_DIR/tests/tsan_canary" >/dev/null 2>&1; then
  echo "run_tsan: tsan_canary ran clean — ThreadSanitizer is NOT armed" >&2
  exit 2
fi
echo "run_tsan: canary race detected as expected; sanitizer armed"

ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)" "$@"
