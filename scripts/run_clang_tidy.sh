#!/usr/bin/env bash
# Run the clang-tidy zero-warning baseline over every first-party TU.
#
# Usage: scripts/run_clang_tidy.sh [BUILD_DIR] [-- extra clang-tidy args]
#
#   BUILD_DIR  a CMake build directory with compile_commands.json
#              (default: build; the top-level CMakeLists exports the
#              compilation database unconditionally).
#
# Exit codes: 0 clean / 1 findings / 2 usage or environment error.
#
# Gating: clang-tidy is not part of the pinned build container, so when the
# binary is absent this script prints a notice and exits 0 — the baseline is
# enforced by the strict-tidy-lint CI job, which installs clang-tidy. Set
# MULINK_REQUIRE_CLANG_TIDY=1 (CI does) to make a missing binary fatal.
set -u

BUILD_DIR="${1:-build}"
shift || true
[ "${1:-}" = "--" ] && shift

TIDY_BIN="${CLANG_TIDY:-clang-tidy}"
if ! command -v "$TIDY_BIN" >/dev/null 2>&1; then
  if [ "${MULINK_REQUIRE_CLANG_TIDY:-0}" = "1" ]; then
    echo "run_clang_tidy: $TIDY_BIN not found and MULINK_REQUIRE_CLANG_TIDY=1" >&2
    exit 2
  fi
  echo "run_clang_tidy: $TIDY_BIN not found; skipping (enforced in CI)" >&2
  exit 0
fi

if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
  echo "run_clang_tidy: $BUILD_DIR/compile_commands.json missing —" \
       "configure first: cmake -B $BUILD_DIR -S ." >&2
  exit 2
fi

cd "$(dirname "$0")/.."

# Every first-party TU; the compilation database filters out anything that
# is not part of the build (GTest mains etc. come via their own TUs).
mapfile -t FILES < <(find src tools examples bench \
  -name '*.cpp' -not -path 'tools/mulink-lint/*' | sort)

if command -v run-clang-tidy >/dev/null 2>&1; then
  # The parallel driver that ships with clang-tidy.
  run-clang-tidy -clang-tidy-binary "$TIDY_BIN" -p "$BUILD_DIR" -quiet \
    "$@" "${FILES[@]/#/^}" && exit 0
  exit 1
fi

STATUS=0
for f in "${FILES[@]}"; do
  "$TIDY_BIN" -p "$BUILD_DIR" --quiet "$@" "$f" || STATUS=1
done
exit "$STATUS"
